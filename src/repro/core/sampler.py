"""The STEM+ROOT sampler: execution-time-driven kernel-level sampling.

End-to-end flow (paper Figure 3):

1. group invocations by kernel name;
2. ROOT recursively splits each name group by execution time, producing
   fine-grained leaf clusters (one per performance peak);
3. STEM's joint KKT solver (Eq. 6) allocates sample sizes across *all*
   leaf clusters at once under the global error bound;
4. representatives are drawn by random sampling with replacement (the
   i.i.d. requirement of the CLT), yielding a :class:`SamplingPlan`.

Ablation switches: ``use_root=False`` collapses step 2 (one cluster per
kernel name); ``use_kkt=False`` replaces step 3 with the per-cluster
Eq. (3) bound; ``replacement=False`` draws without replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..analysis import detsan
from ..resilience.validation import validate_times
from ..workloads.workload import Workload
from .plan import PlanCluster, SamplingPlan
from .root import RootCluster, RootConfig, root_split
from .stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    kkt_sample_sizes,
    per_cluster_sample_sizes,
    predicted_error_multi,
)

__all__ = ["StemRootSampler", "LabeledCluster"]


@dataclass(frozen=True)
class LabeledCluster:
    """A leaf cluster tagged with the kernel name it came from."""

    name: str
    cluster: RootCluster

    @property
    def stats(self) -> ClusterStats:
        return self.cluster.stats

    @property
    def indices(self) -> np.ndarray:
        return self.cluster.indices


class StemRootSampler:
    """Builds STEM+ROOT sampling plans from execution-time profiles."""

    method = "stem"

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        z: float = DEFAULT_Z,
        k: int = 2,
        min_cluster_size: int = 8,
        use_root: bool = True,
        use_kkt: bool = True,
        replacement: bool = True,
        validation: str = "strict",
        tree_cache=None,
        fidelity_gap: float = 0.0,
    ):
        if validation not in ("off", "strict", "repair"):
            raise ValueError("validation must be 'off', 'strict' or 'repair'")
        if fidelity_gap < 0:
            raise ValueError("fidelity_gap must be non-negative")
        self.epsilon = epsilon
        self.z = z
        #: Measured relative gap of the ground-truth tier the plan will be
        #: scored against (see :mod:`repro.core.fidelity`).  Folded into
        #: the reported ``predicted_error`` via
        #: :func:`~repro.core.stem.combine_fidelity_bound`; zero for pure
        #: cycle-level truth, leaving the legacy numbers untouched.
        self.fidelity_gap = fidelity_gap
        self.root_config = RootConfig(
            epsilon=epsilon, z=z, k=k, min_cluster_size=min_cluster_size
        )
        self.use_root = use_root
        self.use_kkt = use_kkt
        self.replacement = replacement
        #: Optional :class:`~repro.memo.SplitTreeCache` shared across
        #: samplers — epsilon-sweep points at the same seed then reuse
        #: each kernel group's candidate split tree and only re-walk the
        #: acceptance decisions (incremental re-planning).
        self.tree_cache = tree_cache
        #: Profile validation mode applied in :meth:`cluster` — ``strict``
        #: raises :class:`~repro.errors.ProfileValidationError` on NaN /
        #: inf / non-positive times or length mismatch; ``repair`` fixes
        #: them (median fill) before clustering; ``off`` trusts the input.
        self.validation = validation

    # -- pipeline stages -----------------------------------------------------
    def cluster(
        self,
        workload: Workload,
        times: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> List[LabeledCluster]:
        """Stages 1–2: group by name, then ROOT-split each group."""
        times = np.asarray(times, dtype=np.float64)
        if self.validation != "off":
            times, _health = validate_times(
                times,
                expected_length=len(workload),
                mode=self.validation,
                name=f"{workload.name} profile",
            )
        elif len(times) != len(workload):
            raise ValueError("times must have one entry per invocation")
        if rng is None:
            rng = np.random.default_rng(0)
        clusters: List[LabeledCluster] = []
        with obs.span("sampler.cluster", invocations=len(workload)) as sp:
            for name, indices in workload.indices_by_name().items():
                group_times = times[indices]
                if self.use_root:
                    leaves = root_split(
                        group_times,
                        indices,
                        config=self.root_config,
                        rng=rng,
                        tree_cache=self.tree_cache,
                    )
                else:
                    leaves = [
                        RootCluster(
                            indices=indices,
                            stats=ClusterStats.from_times(group_times),
                        )
                    ]
                clusters.extend(
                    LabeledCluster(name=name, cluster=leaf) for leaf in leaves
                )
            sp.attrs["leaf_clusters"] = len(clusters)
        obs.set_gauge("sampler.leaf_clusters", len(clusters))
        return clusters

    def sample_sizes(self, clusters: List[LabeledCluster]) -> np.ndarray:
        """Stage 3: allocate samples across all leaf clusters."""
        stats = [c.stats for c in clusters]
        with obs.span("sampler.allocate", clusters=len(clusters)):
            if self.use_kkt:
                sizes = kkt_sample_sizes(stats, epsilon=self.epsilon, z=self.z)
            else:
                sizes = per_cluster_sample_sizes(stats, epsilon=self.epsilon, z=self.z)
            # Never request more samples than a cluster holds: simulating every
            # member once already reproduces the cluster exactly.
            caps = np.array([c.cluster.size for c in clusters], dtype=np.int64)
            sizes = np.minimum(sizes, caps)
        obs.inc("sampler.samples_allocated", int(sizes.sum()))
        return sizes

    def build_plan(
        self,
        workload: Workload,
        times: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        """Full pipeline: profile times in, sampling plan out."""
        # DetSan can only compare draws across runs when the seed is
        # authoritative; an externally-threaded generator carries
        # caller-side state the sync-point key cannot capture.
        seeded = rng is None
        if rng is None:
            rng = np.random.default_rng(seed)
        with obs.span(
            "sampler.build_plan", workload=workload.name, invocations=len(workload)
        ):
            clusters = self.cluster(workload, times, rng=rng)
            sizes = self.sample_sizes(clusters)

            plan_clusters: List[PlanCluster] = []
            with obs.span("sampler.select", clusters=len(clusters)):
                peak_counter: Dict[str, int] = {}
                for labeled, m in zip(clusters, sizes):
                    peak = peak_counter.get(labeled.name, 0)
                    peak_counter[labeled.name] = peak + 1
                    indices = labeled.indices
                    m = int(m)
                    # With replacement the draw must stay i.i.d. even when
                    # m == len(indices): switching to without-replacement
                    # there (as this code once did) silently breaks the
                    # CLT assumption behind Eq. (2).  ``sample_sizes``
                    # caps m at the cluster size, so m > len(indices)
                    # never reaches the without-replacement branch.
                    if self.replacement:
                        chosen = rng.choice(indices, size=m, replace=True)
                    else:
                        chosen = rng.choice(indices, size=m, replace=False)
                    if seeded and detsan.is_enabled():
                        # Sync point: the members drawn for each leaf
                        # cluster are a pure function of (workload,
                        # method, seed) — any engine or ordering change
                        # that shifts them breaks reproducibility.
                        detsan.record(
                            f"plan.draw|{workload.name}|{self.method}"
                            f"|seed={seed}|{labeled.name}#{peak}",
                            np.asarray(chosen, dtype=np.int64),
                        )
                    plan_clusters.append(
                        PlanCluster(
                            label=f"{labeled.name}#{peak}",
                            member_count=len(indices),
                            sampled_indices=np.asarray(chosen, dtype=np.int64),
                        )
                    )

            predicted = predicted_error_multi(
                [c.stats for c in clusters], sizes, z=self.z,
                fidelity_gap=self.fidelity_gap,
            )
        plan = SamplingPlan(
            method=self.method,
            workload_name=workload.name,
            clusters=plan_clusters,
            metadata={
                "epsilon": self.epsilon,
                "z": self.z,
                "use_root": self.use_root,
                "use_kkt": self.use_kkt,
                "replacement": self.replacement,
                "predicted_error": predicted,
                "fidelity_gap": self.fidelity_gap,
                "num_leaf_clusters": len(clusters),
            },
        )
        obs.inc("sampler.plans_built")
        obs.log_event(
            "sampler.plan_built",
            workload=workload.name,
            method=self.method,
            leaf_clusters=len(clusters),
            samples=plan.num_samples,
            predicted_error=predicted,
        )
        return plan

    def build_plan_from_store(
        self,
        store,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        """Sampler-protocol entry point used by the experiment runner.

        ``store`` is any object exposing ``workload`` and
        ``execution_times()`` — in practice a
        :class:`repro.baselines.base.ProfileStore`, whose nsys view is
        exactly the lightweight profile STEM consumes.
        """
        return self.build_plan(
            store.workload, store.execution_times(), rng=rng, seed=seed
        )
