"""Streaming (single-pass) profile ingestion for huge workloads.

The paper credits STEM's scalability to needing only kernel execution
times and a near-linear algorithm (Sec. 5.6: ``O(N log K)`` to
``O(N log N)``).  For workloads whose profiles do not fit in memory —
tens of millions of kernel launches streamed from an nsys export — this
module ingests the profile one chunk at a time:

* per kernel name, a Welford accumulator maintains exact running
  ``(n, mu, sigma)``;
* per kernel name, a bounded reservoir keeps a uniform random subsample
  of (index, time) pairs.

ROOT then clusters the *reservoir* (a consistent estimator of the
group's distribution), cluster boundaries are derived from it, and every
streamed invocation can be assigned to its cluster by a second pass — or
sample selection can simply draw from the reservoir members, which is
what :meth:`StreamingProfile.build_plan` does.  Memory use is
``O(#names * reservoir_size)`` regardless of workload length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..seeding import stable_text_seed
from .plan import PlanCluster, SamplingPlan
from .root import RootConfig, root_split
from .stem import DEFAULT_EPSILON, DEFAULT_Z, ClusterStats, kkt_sample_sizes

__all__ = ["WelfordAccumulator", "Reservoir", "StreamingProfile"]


class WelfordAccumulator:
    """Numerically stable running mean/variance."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def add_many(self, values: np.ndarray) -> None:
        for value in np.asarray(values, dtype=np.float64):
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Population variance (matching ``np.std`` without ddof)."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def stats(self) -> ClusterStats:
        if self.count == 0:
            raise ValueError("no values accumulated")
        return ClusterStats(n=self.count, mu=max(self.mean, 1e-300), sigma=self.std)


class Reservoir:
    """Uniform reservoir sample of (index, value) pairs (Algorithm R)."""

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = rng
        self.seen = 0
        self.indices: List[int] = []
        self.values: List[float] = []

    def offer(self, index: int, value: float) -> None:
        self.seen += 1
        if len(self.indices) < self.capacity:
            self.indices.append(index)
            self.values.append(value)
            return
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self.indices[slot] = index
            self.values[slot] = value

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.indices, dtype=np.int64),
            np.asarray(self.values, dtype=np.float64),
        )


@dataclass
class StreamingProfile:
    """One-pass ingestion of a (name, index, time) profile stream."""

    reservoir_size: int = 2048
    seed: int = 0
    _accumulators: Dict[str, WelfordAccumulator] = field(default_factory=dict)
    _reservoirs: Dict[str, Reservoir] = field(default_factory=dict)
    _total: int = 0

    def _rng_for(self, name: str) -> np.random.Generator:
        # hash(name) is process-salted; stable_text_seed is not.
        return np.random.default_rng(stable_text_seed(name, self.seed))

    # -- ingestion ---------------------------------------------------------
    def ingest(
        self, names: Iterable[str], indices: np.ndarray, times: np.ndarray
    ) -> None:
        """Consume one chunk of the profile stream."""
        indices = np.asarray(indices)
        times = np.asarray(times, dtype=np.float64)
        if len(indices) != len(times):
            raise ValueError("indices and times must align")
        for name, index, time in zip(names, indices, times):
            acc = self._accumulators.get(name)
            if acc is None:
                acc = WelfordAccumulator()
                self._accumulators[name] = acc
                self._reservoirs[name] = Reservoir(
                    self.reservoir_size, self._rng_for(name)
                )
            acc.add(float(time))
            self._reservoirs[name].offer(int(index), float(time))
            self._total += 1

    def ingest_workload_chunked(
        self, workload, times: np.ndarray, chunk_size: int = 65536
    ) -> None:
        """Convenience: stream an in-memory workload chunk by chunk."""
        name_of_spec = [s.name for s in workload.specs]
        for start in range(0, len(workload), chunk_size):
            stop = min(start + chunk_size, len(workload))
            chunk_names = [
                name_of_spec[int(sid)] for sid in workload.spec_ids[start:stop]
            ]
            self.ingest(chunk_names, np.arange(start, stop), times[start:stop])

    # -- accounting ----------------------------------------------------------
    @property
    def total_ingested(self) -> int:
        return self._total

    def kernel_names(self) -> List[str]:
        return sorted(self._accumulators)

    def group_stats(self, name: str) -> ClusterStats:
        return self._accumulators[name].stats()

    # -- plan construction -------------------------------------------------------
    def build_plan(
        self,
        epsilon: float = DEFAULT_EPSILON,
        z: float = DEFAULT_Z,
        root_config: Optional[RootConfig] = None,
        seed: int = 0,
        workload_name: str = "streamed",
    ) -> SamplingPlan:
        """STEM+ROOT over the reservoirs.

        Cluster sizes are scaled from reservoir proportions to true group
        counts, so the plan's weights represent the full stream.  Samples
        are drawn from reservoir members (a uniform subsample of each
        group, hence a uniform subsample of each cluster).
        """
        rng = np.random.default_rng(seed)
        config = root_config or RootConfig(epsilon=epsilon, z=z)

        labeled: List[Tuple[str, np.ndarray, ClusterStats]] = []
        for name in self.kernel_names():
            indices, values = self._reservoirs[name].as_arrays()
            group_n = self._accumulators[name].count
            scale = group_n / max(len(values), 1)
            leaves = root_split(values, indices, config=config, rng=rng)
            remaining = group_n
            for position, leaf in enumerate(leaves):
                leaves_after = len(leaves) - position - 1
                if leaves_after == 0:
                    scaled_n = max(1, remaining)
                else:
                    # Leave at least one member for every later leaf, so
                    # rounding can neither starve them nor overdraw the
                    # group's true count.
                    scaled_n = max(
                        1,
                        min(
                            int(round(leaf.size * scale)),
                            remaining - leaves_after,
                        ),
                    )
                    remaining -= scaled_n
                labeled.append(
                    (
                        name,
                        leaf.indices,
                        ClusterStats(
                            n=scaled_n, mu=leaf.stats.mu, sigma=leaf.stats.sigma
                        ),
                    )
                )

        sizes = kkt_sample_sizes(
            [stats for _, _, stats in labeled], epsilon=epsilon, z=z
        )
        clusters: List[PlanCluster] = []
        counter: Dict[str, int] = {}
        for (name, member_indices, stats), m in zip(labeled, sizes):
            peak = counter.get(name, 0)
            counter[name] = peak + 1
            m = int(min(m, len(member_indices)))
            chosen = rng.choice(member_indices, size=m, replace=(m < len(member_indices)))
            clusters.append(
                PlanCluster(
                    label=f"{name}#{peak}",
                    member_count=stats.n,
                    sampled_indices=np.asarray(chosen, dtype=np.int64),
                )
            )
        return SamplingPlan(
            method="stem-streaming",
            workload_name=workload_name,
            clusters=clusters,
            metadata={
                "epsilon": epsilon,
                "z": z,
                "reservoir_size": self.reservoir_size,
                "total_ingested": self._total,
            },
        )
