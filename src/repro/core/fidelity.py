"""Multi-fidelity screening: mix analytical and cycle-level tiers honestly.

The DSE and sweep experiments need per-invocation ground-truth times per
hardware variant.  Cycle-level simulation is accurate but dominates wall
clock; the :class:`~repro.sim.analytical.AnalyticalSimulator` is orders
of magnitude cheaper but approximate.  This module implements the
screen-cheap-then-spend-expensive split (PPT-GPU's hybrid tier; Ekman's
two-phase structure):

1. **Screen** every invocation with the analytical tier.
2. **Calibrate** against the cycle-level oracle on a small seeded probe
   set: a per-kernel-name multiplicative scale (geometric mean of the
   cycle/analytical ratios, fitted in log space) plus the residual
   distribution after calibration.  Both tiers share the same
   ``(seed, index)``-keyed noise factors, so hardware noise cancels in
   the ratios instead of inflating the measured gap.
3. **Escalate** the invocations whose screening uncertainty could move
   the weighted-sum estimate or the KKT allocation most — uncertainty is
   ``per-kernel-name residual risk x calibrated value``, so groups the
   probes showed to calibrate poorly are escalated before well-behaved
   ones of the same size — to cycle-level simulation, up to
   ``escalation_budget`` of the workload.
4. **Account**: the reported fidelity gap ``g`` must bound the residual
   of *unseen* invocations, not just the probes, so it is tail-aware:
   probe residuals are measured out-of-sample (leave-one-out
   calibration), their ``gap_quantile`` is extrapolated to the unseen
   analytical population with an exponential-tail (peaks-over-threshold)
   model, and the result is padded by ``gap_safety`` and floored at
   ``min_gap``.  The gap folds into the reported ε via
   :func:`~repro.core.stem.combine_fidelity_bound`, so the bound stays
   an honest upper bound on error *versus cycle-level truth*, not versus
   the screen — verified empirically across workloads, seeds and
   hardware variants in ``tests/test_fidelity.py``.

Every knob on :class:`FidelityPolicy` changes screened values, so all of
them feed :meth:`FidelityPolicy.memo_identity` — the cache-key linter
(``[[tool.repro.lint.cache-key]]`` in pyproject.toml) enforces that no
future knob is silently left out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import obs
from .stem import combine_fidelity_bound

__all__ = [
    "FIDELITY_MODES",
    "FidelityPolicy",
    "FidelityTimes",
    "probe_indices",
    "tail_gap",
    "fidelity_cycle_counts",
]

#: Recognized fidelity tiers for ground-truth generation.
FIDELITY_MODES = ("cycle", "analytical", "hybrid")


@dataclass(frozen=True)
class FidelityPolicy:
    """How to mix analytical screening with cycle-level simulation.

    Unlike :class:`~repro.sim.batch.BatchPolicy` (pure performance, every
    knob exempt from the cache key), every field here changes the
    screened values a run produces, so every field is part of
    :meth:`memo_identity` and of the run's result identity.
    """

    #: ``cycle`` — oracle only; ``analytical`` — calibrated screen only;
    #: ``hybrid`` — calibrated screen plus top-value escalation.
    mode: str = "hybrid"
    #: Cycle-level calibration probes (at least this many; every kernel
    #: name gets probed so per-name scales exist for all groups).
    probe_count: int = 12
    #: Fraction of invocations escalated to cycle-level on top of the
    #: probes (hybrid mode only).
    escalation_budget: float = 0.05
    #: Quantile of the leave-one-out probe-residual distribution used as
    #: the base of the fidelity gap (1.0 = the max residual).  The base
    #: is then tail-extrapolated to the unseen analytical population —
    #: see :func:`tail_gap` — before the safety margin applies.
    gap_quantile: float = 1.0
    #: Multiplicative safety margin on the tail-extrapolated gap: the
    #: tail model is itself fitted from a sample, so the reported gap
    #: pads the extrapolation.
    gap_safety: float = 1.25
    #: Floor on the reported gap — an empirical gap of ~0 on a lucky
    #: probe set must not be reported as a zero-width bound.
    min_gap: float = 0.01

    def __post_init__(self) -> None:
        if self.mode not in FIDELITY_MODES:
            raise ValueError(
                f"mode must be one of {FIDELITY_MODES}, got {self.mode!r}"
            )
        if self.probe_count < 2:
            raise ValueError("probe_count must be at least 2")
        if not 0.0 <= self.escalation_budget <= 1.0:
            raise ValueError("escalation_budget must be within [0, 1]")
        if not 0.0 < self.gap_quantile <= 1.0:
            raise ValueError("gap_quantile must be within (0, 1]")
        if self.gap_safety < 1.0:
            raise ValueError("gap_safety must be >= 1")
        if self.min_gap < 0.0:
            raise ValueError("min_gap must be non-negative")

    def memo_identity(self) -> str:
        """Cache/result identity: every knob shapes screened values."""
        return (
            f"fidelity|{self.mode}|p{self.probe_count}"
            f"|e{self.escalation_budget!r}|q{self.gap_quantile!r}"
            f"|s{self.gap_safety!r}|g{self.min_gap!r}"
        )


@dataclass
class FidelityTimes:
    """Per-invocation ground-truth times with tier provenance.

    Behaves as the value array for estimation (``values``) while carrying
    everything ε accounting needs: which entries are cycle-level
    (``cycle_mask``), the measured per-invocation gap (``gap``) and the
    calibration actually applied.
    """

    values: np.ndarray
    #: True where the value came from the cycle-level oracle.
    cycle_mask: np.ndarray
    #: Per-invocation relative gap bound of the analytical tier
    #: (leave-one-out residual quantile, tail-extrapolated to the unseen
    #: population, x safety, floored).
    gap: float
    mode: str
    probes: int = 0
    escalations: int = 0
    #: Per-kernel-name multiplicative calibration scales.
    calibration: Dict[str, float] = field(default_factory=dict)
    #: Leave-one-out calibrated relative residuals on the probe set —
    #: the measured out-of-sample fidelity-gap distribution the reported
    #: gap is extrapolated from, kept for reporting.
    residuals: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Caller-set provenance key (e.g. the DSE variant label) so one
    #: plan evaluated against several ground truths records each
    #: evaluation's fidelity separately instead of clobbering one slot.
    label: str = ""

    def __len__(self) -> int:
        return len(self.values)

    @property
    def analytical_share(self) -> float:
        """Value-weighted share of analytical (screened) entries."""
        total = float(self.values.sum())
        if total <= 0.0:
            return 0.0
        return float(self.values[~self.cycle_mask].sum()) / total

    @property
    def effective_gap(self) -> float:
        """Gap of the *total*: only analytical entries carry any gap.

        With per-invocation bound ``|v_i - t_i| <= g * t_i`` on analytical
        entries and exact cycle entries,
        ``|sum(V) - sum(T)| <= g * sum_analytical(t_i)``.  The analytical
        truth share is unknown but bounded by the value share inflated by
        ``(1+g)/(1-g)``, which keeps this an upper bound rather than a
        plug-in estimate.
        """
        if self.gap <= 0.0:
            return 0.0
        if self.gap >= 1.0:
            return self.gap
        share = self.analytical_share * (1.0 + self.gap) / (1.0 - self.gap)
        return self.gap * min(1.0, share)

    def error_bound(self, epsilon: float) -> float:
        """Honest combined bound versus cycle-level truth."""
        return combine_fidelity_bound(epsilon, self.effective_gap)


def probe_indices(workload, policy: FidelityPolicy) -> np.ndarray:
    """Deterministic seeded probe set: strided picks per kernel name.

    Every kernel name is probed (so a per-name calibration scale exists
    for each group) with at least two probes when the group allows,
    allocating the remaining budget proportionally to group size.
    """
    groups = workload.indices_by_name()
    n = len(workload)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    budget = max(policy.probe_count, 2 * len(groups))
    picks = []
    for name in sorted(groups):
        idxs = np.asarray(groups[name], dtype=np.int64)
        want = max(2, int(round(budget * len(idxs) / n)))
        want = min(want, len(idxs))
        take = np.unique(np.linspace(0, len(idxs) - 1, want).astype(np.int64))
        picks.append(np.sort(idxs)[take])
    return np.unique(np.concatenate(picks))


def _calibration_scales(
    workload,
    probes: np.ndarray,
    probe_cycles: np.ndarray,
    analytical: np.ndarray,
) -> Dict[str, float]:
    """Per-kernel-name multiplicative scales, fitted in log space.

    Names with fewer than two probes fall back to the global geometric
    mean so a single noisy probe cannot set a group's scale alone.
    """
    log_ratio = np.log(probe_cycles) - np.log(analytical[probes])
    global_log = float(np.mean(log_ratio))
    probe_pos = {int(p): i for i, p in enumerate(probes)}
    scales: Dict[str, float] = {}
    for name, idxs in workload.indices_by_name().items():
        rows = [probe_pos[int(i)] for i in idxs if int(i) in probe_pos]
        if len(rows) >= 2:
            scales[name] = float(math.exp(float(np.mean(log_ratio[rows]))))
        else:
            scales[name] = float(math.exp(global_log))
    return scales


def _probe_rows_by_name(workload, probes: np.ndarray) -> Dict[str, list]:
    """Probe-array row indices per kernel name (names with >= 2 probes
    carry their own calibration scale; the rest fall back to global)."""
    probe_pos = {int(p): i for i, p in enumerate(probes)}
    rows: Dict[str, list] = {}
    for name, idxs in workload.indices_by_name().items():
        rows[name] = [probe_pos[int(i)] for i in idxs if int(i) in probe_pos]
    return rows


def _loo_residuals(
    workload,
    probes: np.ndarray,
    probe_cycles: np.ndarray,
    analytical: np.ndarray,
) -> np.ndarray:
    """Out-of-sample probe residuals via leave-one-out calibration.

    In-sample residuals (probe scored against a scale fitted *on that
    probe*) systematically understate what the screen does on unseen
    invocations — the exact optimism that made the reported gap
    unsound on heterogeneous workloads.  Refitting each group's scale
    without the held-out probe makes every residual an honest preview of
    an unseen invocation's error.
    """
    log_ratio = np.log(probe_cycles) - np.log(analytical[probes])
    k = len(probes)
    total = float(np.sum(log_ratio))
    out = np.zeros(k, dtype=np.float64)
    grouped: set = set()
    for rows in _probe_rows_by_name(workload, probes).values():
        if len(rows) < 2:
            continue  # group used the global scale; handled below
        s = float(np.sum(log_ratio[rows]))
        for r in rows:
            loo = (s - float(log_ratio[r])) / (len(rows) - 1)
            out[r] = abs(math.expm1(loo - float(log_ratio[r])))
            grouped.add(r)
    for r in range(k):
        if r in grouped:
            continue
        loo = (
            (total - float(log_ratio[r])) / (k - 1)
            if k >= 2
            else float(log_ratio[r])
        )
        out[r] = abs(math.expm1(loo - float(log_ratio[r])))
    return out


def _name_risks(
    workload, probes: np.ndarray, residuals: np.ndarray
) -> Dict[str, float]:
    """Per-kernel-name residual risk: the worst out-of-sample residual
    the group's probes showed (global worst for under-probed groups)."""
    global_max = float(residuals.max()) if len(residuals) else 0.0
    risks: Dict[str, float] = {}
    for name, rows in _probe_rows_by_name(workload, probes).items():
        if len(rows) >= 2:
            risks[name] = float(residuals[rows].max())
        else:
            risks[name] = global_max
    return risks


def tail_gap(residuals: np.ndarray, quantile: float, unseen: int) -> float:
    """Tail-aware bound on the residual an *unseen* invocation can reach.

    The empirical ``quantile`` of ``k`` probe residuals only covers the
    probes themselves; with ``unseen`` more analytical invocations in
    the population, the realized maximum residual keeps growing past the
    observed one.  Model the residual upper tail as exponential
    (peaks-over-threshold with exponential excesses over the median —
    the memoryless, conservative default when the tail shape is
    unknown): for an exponential tail with scale ``beta`` the expected
    maximum of ``N`` draws grows like ``beta * ln N``, so seeing
    ``k + unseen`` draws instead of ``k`` extends the observed quantile
    by ``beta * ln(1 + unseen / k)``.
    """
    if len(residuals) == 0:
        return 0.0
    base = float(np.quantile(residuals, quantile))
    k = len(residuals)
    if unseen <= 0 or k < 2:
        return base
    threshold = float(np.median(residuals))
    excess = residuals[residuals > threshold] - threshold
    if len(excess) == 0:
        return base
    beta = float(np.mean(excess))
    return base + beta * math.log1p(unseen / k)


def fidelity_cycle_counts(
    workload,
    gpu,
    seed: int = 0,
    policy: Optional[FidelityPolicy] = None,
    sim_cache=None,
) -> FidelityTimes:
    """Ground-truth times for ``workload`` on ``gpu`` at a fidelity tier.

    ``mode="cycle"`` returns exactly
    ``GpuSimulator(gpu, sim_cache=...).cycle_counts(workload, seed)`` —
    the bit-identical legacy path.  The other modes screen analytically,
    calibrate on probes, and (for ``hybrid``) escalate the invocations
    with the largest risk-weighted values, where risk is the group's
    worst leave-one-out probe residual — a poorly calibrated group is
    escalated before a well-behaved one of the same size; probe and
    escalation results come from the same oracle
    with the same cache identity, so they warm the cycle-level sim cache
    for later full runs.
    """
    # Lazy imports: core must stay importable without pulling the whole
    # simulator stack (mirrors SimGroundTruth in the sweep experiment).
    from ..sim import BatchPolicy, GpuSimulator
    from ..sim.analytical import AnalyticalSimulator

    policy = policy or FidelityPolicy()
    n = len(workload)
    if policy.mode == "cycle" or n == 0:
        oracle = GpuSimulator(gpu, sim_cache=sim_cache)
        values = oracle.cycle_counts(workload, seed=seed)
        obs.inc("sim.fidelity.cycle_kernels", n)
        obs.set_gauge("sim.fidelity.cycle_share", 1.0)
        return FidelityTimes(
            values=values,
            cycle_mask=np.ones(n, dtype=bool),
            gap=0.0,
            mode="cycle",
        )

    # Probe/escalation groups are far narrower than the width where the
    # SoA batch engine pays off (a ~20-lane chunk costs 2-6x the scalar
    # event loop per trace), so the subset oracle raises the batching
    # threshold.  Batch policy is execution strategy only — not part of
    # memo_identity — so results and cache entries stay bit-identical.
    oracle = GpuSimulator(
        gpu, batch_policy=BatchPolicy(min_width=64), sim_cache=sim_cache
    )
    with obs.span("sim.fidelity.screen", workload=workload.name, mode=policy.mode):
        analytical = AnalyticalSimulator(gpu, sim_cache=sim_cache)
        screened = analytical.cycle_counts(workload, seed=seed)

        probes = probe_indices(workload, policy)
        probe_result = oracle.simulate_workload(workload, probes, seed=seed)
        probe_cycles = np.array(
            [r.cycles for r in probe_result.kernel_results], dtype=np.float64
        )

        scales = _calibration_scales(workload, probes, probe_cycles, screened)
        scale_arr = np.ones(n, dtype=np.float64)
        risk_arr = np.zeros(n, dtype=np.float64)
        residuals = _loo_residuals(workload, probes, probe_cycles, screened)
        risks = _name_risks(workload, probes, residuals)
        for name, idxs in workload.indices_by_name().items():
            group = np.asarray(idxs, dtype=np.int64)
            scale_arr[group] = scales[name]
            risk_arr[group] = risks[name]
        values = screened * scale_arr

        cycle_mask = np.zeros(n, dtype=bool)
        values[probes] = probe_cycles
        cycle_mask[probes] = True

        escalations = 0
        if policy.mode == "hybrid" and policy.escalation_budget > 0.0:
            budget = min(n - len(probes), math.ceil(policy.escalation_budget * n))
            if budget > 0:
                candidates = np.flatnonzero(~cycle_mask)
                # Screening uncertainty is residual risk x value: a large
                # invocation from a group the probes showed to calibrate
                # poorly is where a wrong screen could move the
                # weighted-sum estimate (or the KKT allocation) most.
                uncertainty = risk_arr[candidates] * values[candidates]
                order = candidates[
                    np.argsort(-uncertainty, kind="stable")
                ][:budget]
                escalate = np.sort(order)
                esc_result = oracle.simulate_workload(workload, escalate, seed=seed)
                values[escalate] = [r.cycles for r in esc_result.kernel_results]
                cycle_mask[escalate] = True
                escalations = len(escalate)

        # The gap must bound unseen invocations, so extrapolate the
        # leave-one-out residual quantile to the invocations that stay
        # analytical after escalation (probes/escalations carry no gap).
        unseen = int(n - cycle_mask.sum())
        gap = max(
            policy.min_gap,
            tail_gap(residuals, policy.gap_quantile, unseen) * policy.gap_safety,
        )

    times = FidelityTimes(
        values=values,
        cycle_mask=cycle_mask,
        gap=gap,
        mode=policy.mode,
        probes=len(probes),
        escalations=escalations,
        calibration=scales,
        residuals=residuals,
    )
    obs.inc("sim.fidelity.probes", len(probes))
    obs.inc("sim.fidelity.escalations", escalations)
    obs.inc("sim.fidelity.screened_kernels", n - int(cycle_mask.sum()))
    obs.observe("sim.fidelity.gap", gap)
    obs.set_gauge("sim.fidelity.cycle_share", 1.0 - times.analytical_share)
    obs.log_event(
        "sim.fidelity.screened",
        workload=workload.name,
        mode=policy.mode,
        probes=len(probes),
        escalations=escalations,
        gap=gap,
        effective_gap=times.effective_gap,
    )
    return times
