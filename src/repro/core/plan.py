"""Sampling plans: the output of every sampling method.

A :class:`SamplingPlan` records, for each cluster, which invocations the
sampler selected and how many full-workload invocations each selection
represents.  The plan is the "sampling information" of the paper's Figure
5 pipeline: it is handed to a simulator, which runs only the selected
kernels and reconstructs full-workload totals by weighted sums.

Plans serialize to plain dictionaries (JSON-compatible) so they can be
embedded into workload traces, matching the paper's trace-annotation flow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["PlanCluster", "SamplingPlan"]


@dataclass(frozen=True)
class PlanCluster:
    """One cluster's contribution to a sampling plan.

    ``member_count`` is ``N_i`` (how many invocations the cluster holds in
    the full workload); ``sampled_indices`` are the workload-level indices
    of the selected representatives, possibly with repeats when sampling
    with replacement.  Estimation weighs the *mean* of the sampled times
    by ``member_count``.
    """

    label: str
    member_count: int
    sampled_indices: np.ndarray

    def __post_init__(self) -> None:
        if self.member_count <= 0:
            raise ValueError("member_count must be positive")
        if len(self.sampled_indices) == 0:
            raise ValueError("a plan cluster must sample at least one invocation")

    @property
    def sample_size(self) -> int:
        return len(self.sampled_indices)

    @property
    def weight(self) -> float:
        """Invocations represented per sample, N_i / m_i."""
        return self.member_count / self.sample_size

    def estimate_total(self, values: np.ndarray) -> float:
        """N_i * mean(values[samples]) for any per-invocation quantity."""
        return self.member_count * float(values[self.sampled_indices].mean())


@dataclass
class SamplingPlan:
    """A full sampling plan over one workload."""

    method: str
    workload_name: str
    clusters: List[PlanCluster] = field(default_factory=list)
    #: Free-form provenance (epsilon, z, hyper-parameters...).
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- size accounting --------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_samples(self) -> int:
        """Total selected samples, counting replacement repeats."""
        return sum(c.sample_size for c in self.clusters)

    @property
    def represented_invocations(self) -> int:
        """Total workload invocations the plan accounts for."""
        return sum(c.member_count for c in self.clusters)

    def unique_indices(self) -> np.ndarray:
        """Distinct invocations that must actually be simulated.

        Repeated selections (replacement) and overlaps across clusters are
        simulated once and reused, as a real simulator would.
        """
        if not self.clusters:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([c.sampled_indices for c in self.clusters]))

    def sample_weights(self) -> Dict[int, float]:
        """Per-invocation total weight (for metric estimation).

        An invocation sampled ``r`` times in a cluster of weight ``w``
        accumulates ``r * w``.
        """
        weights: Dict[int, float] = {}
        for cluster in self.clusters:
            w = cluster.weight
            for idx in cluster.sampled_indices:
                weights[int(idx)] = weights.get(int(idx), 0.0) + w
        return weights

    # -- estimation ---------------------------------------------------------
    def estimate_total(self, values: np.ndarray) -> float:
        """Weighted-sum estimate of ``sum(values)`` over the full workload."""
        return float(sum(c.estimate_total(values) for c in self.clusters))

    def simulated_cost(self, times: np.ndarray) -> float:
        """Time actually spent simulating: sum over unique selections."""
        unique = self.unique_indices()
        if len(unique) == 0:
            return 0.0
        return float(times[unique].sum())

    # -- validation -----------------------------------------------------------
    def validate(self, workload_size: int) -> None:
        """Raise ``ValueError`` if the plan is inconsistent with a workload."""
        for cluster in self.clusters:
            idx = cluster.sampled_indices
            if len(idx) and (idx.min() < 0 or idx.max() >= workload_size):
                raise ValueError(
                    f"cluster {cluster.label!r} samples out-of-range indices"
                )
        total = self.represented_invocations
        if total != workload_size:
            raise ValueError(
                f"plan represents {total} invocations, workload has {workload_size}"
            )

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "workload": self.workload_name,
            "metadata": dict(self.metadata),
            "clusters": [
                {
                    "label": c.label,
                    "member_count": c.member_count,
                    "sampled_indices": [int(i) for i in c.sampled_indices],
                }
                for c in self.clusters
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SamplingPlan":
        clusters = [
            PlanCluster(
                label=str(entry["label"]),
                member_count=int(entry["member_count"]),
                sampled_indices=np.asarray(entry["sampled_indices"], dtype=np.int64),
            )
            for entry in payload["clusters"]  # type: ignore[index]
        ]
        return cls(
            method=str(payload["method"]),
            workload_name=str(payload["workload"]),
            clusters=clusters,
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SamplingPlan":
        return cls.from_dict(json.loads(text))
