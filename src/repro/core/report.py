"""Transparency reports for sampling plans.

A core selling point of STEM is *trustworthiness*: every plan carries a
theoretical error bound, and that bound decomposes over clusters.  A
:class:`SamplingReport` makes the accounting inspectable — per-cluster
statistics, each cluster's contribution to the bound, where the simulated
time goes, and which kernels dominate the residual risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.reporting import render_table
from .plan import SamplingPlan
from .stem import DEFAULT_Z, ClusterStats, predicted_error_multi

__all__ = ["ClusterReport", "SamplingReport", "build_report"]


@dataclass(frozen=True)
class ClusterReport:
    """Accounting for one plan cluster."""

    label: str
    member_count: int
    sample_size: int
    mu: float
    sigma: float
    #: Share of the full workload's total time this cluster represents.
    time_share: float
    #: This cluster's contribution to the bound's variance term,
    #: N_i^2 sigma_i^2 / m_i, normalized to sum to 1 across clusters.
    variance_share: float

    @property
    def cov(self) -> float:
        return self.sigma / self.mu if self.mu else 0.0

    @property
    def sampling_rate(self) -> float:
        return self.sample_size / self.member_count


@dataclass
class SamplingReport:
    """Full accounting of one sampling plan against profile times."""

    plan_method: str
    workload_name: str
    clusters: List[ClusterReport]
    predicted_error: float
    total_time: float
    simulated_time: float
    #: Error bound the sampler was asked for (``epsilon``), when known.
    requested_epsilon: Optional[float] = None
    #: Bound actually achieved after degraded-mode repairs, when the
    #: resilient pipeline recomputed it (see :mod:`repro.resilience`).
    achieved_epsilon: Optional[float] = None

    @property
    def speedup(self) -> float:
        if self.simulated_time <= 0:
            return float("inf")
        return self.total_time / self.simulated_time

    def dominant_risk_clusters(self, top: int = 5) -> List[ClusterReport]:
        """Clusters contributing most to the theoretical error variance."""
        return sorted(
            self.clusters, key=lambda c: c.variance_share, reverse=True
        )[:top]

    def to_text(self, top: Optional[int] = 15) -> str:
        """Human-readable report table."""
        rows = []
        ordered = sorted(self.clusters, key=lambda c: c.time_share, reverse=True)
        for c in ordered[: top or len(ordered)]:
            rows.append(
                [
                    c.label,
                    c.member_count,
                    c.sample_size,
                    c.mu,
                    c.cov,
                    c.time_share * 100,
                    c.variance_share * 100,
                ]
            )
        header = (
            f"plan: {self.plan_method} on {self.workload_name} — "
            f"bound {self.predicted_error:.2%}, "
            f"predicted speedup {self.speedup:,.1f}x"
        )
        if self.achieved_epsilon is not None:
            requested = (
                f"{self.requested_epsilon:.2%}"
                if self.requested_epsilon is not None
                else "?"
            )
            header += (
                f"\nepsilon: requested {requested}, "
                f"achieved {self.achieved_epsilon:.2%}"
            )
            if (
                self.requested_epsilon is not None
                and self.achieved_epsilon > self.requested_epsilon
            ):
                header += "  (DEGRADED — bound loosened by sample failures)"
        return render_table(
            ["cluster", "N", "m", "mean us", "CoV", "time %", "risk %"],
            rows,
            title=header,
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "num_clusters": float(len(self.clusters)),
            "predicted_error": self.predicted_error,
            "speedup": self.speedup,
            "total_time": self.total_time,
            "simulated_time": self.simulated_time,
        }
        if self.requested_epsilon is not None:
            out["requested_epsilon"] = self.requested_epsilon
        if self.achieved_epsilon is not None:
            out["achieved_epsilon"] = self.achieved_epsilon
        return out


def build_report(
    plan: SamplingPlan,
    times: np.ndarray,
    cluster_members: Optional[Dict[str, np.ndarray]] = None,
    z: float = DEFAULT_Z,
) -> SamplingReport:
    """Build a transparency report for a plan.

    ``cluster_members`` optionally maps cluster labels to the member
    indices of each cluster (STEM's sampler can provide them); without it,
    per-cluster statistics fall back to the *sampled* members, which is
    what a downstream user who only holds the plan can compute.
    """
    stats: List[ClusterStats] = []
    sizes: List[int] = []
    reports: List[ClusterReport] = []

    raw: List[Dict[str, float]] = []
    for cluster in plan.clusters:
        if cluster_members is not None and cluster.label in cluster_members:
            member_times = times[cluster_members[cluster.label]]
        else:
            member_times = times[cluster.sampled_indices]
        cluster_stats = ClusterStats(
            n=cluster.member_count,
            mu=float(max(member_times.mean(), 1e-12)),
            sigma=float(member_times.std()),
        )
        stats.append(cluster_stats)
        sizes.append(cluster.sample_size)
        raw.append(
            {
                "label": cluster.label,
                "n": cluster.member_count,
                "m": cluster.sample_size,
                "mu": cluster_stats.mu,
                "sigma": cluster_stats.sigma,
            }
        )

    total_time = float(sum(s.total for s in stats)) or 1.0
    variance_terms = np.array(
        [(s.n * s.sigma) ** 2 / m for s, m in zip(stats, sizes)], dtype=np.float64
    )
    variance_total = float(variance_terms.sum()) or 1.0
    for entry, s, var in zip(raw, stats, variance_terms):
        reports.append(
            ClusterReport(
                label=str(entry["label"]),
                member_count=int(entry["n"]),
                sample_size=int(entry["m"]),
                mu=float(entry["mu"]),
                sigma=float(entry["sigma"]),
                time_share=s.total / total_time,
                variance_share=float(var) / variance_total,
            )
        )

    def _meta_float(key: str) -> Optional[float]:
        value = plan.metadata.get(key)
        return float(value) if isinstance(value, (int, float)) else None

    return SamplingReport(
        plan_method=plan.method,
        workload_name=plan.workload_name,
        clusters=reports,
        predicted_error=predicted_error_multi(stats, sizes, z=z),
        total_time=total_time,
        simulated_time=plan.simulated_cost(times),
        requested_epsilon=_meta_float("requested_epsilon")
        or _meta_float("epsilon"),
        achieved_epsilon=_meta_float("achieved_epsilon"),
    )
