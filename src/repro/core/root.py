"""ROOT: recursive fine-grained clustering of kernel execution times.

Section 3.4 of the paper: given the invocations of one kernel, ROOT
recursively splits them by k-means on execution time (k=2 by default) and
keeps a split only if STEM predicts the split lowers total simulated time
(Eqs. 7–8).  The recursion isolates each performance peak into its own
cluster without knowing the number of peaks a priori, and stops before
over-partitioning: splitting a unimodal cluster does not reduce variance
enough to pay for the extra per-cluster samples.

The recursion is factored into two halves (see
:mod:`repro.memo.split_tree`): an epsilon-independent **candidate split
tree** (the k-means structure, expanded lazily and reusable across error
bounds) and the epsilon-dependent **acceptance walk**
(:func:`select_leaves`) applying the Eq. (7)–(8) test.  ``root_split``
composes the two, so a from-scratch run and a cached-tree re-walk are
the same code path by construction.

K-means seeding is derived per node from ``(salt, *path)``, where the
salt is a single draw from the caller's generator — so ROOT consumes
exactly one RNG draw per (non-empty) group regardless of how deep the
recursion goes or which splits an epsilon accepts.  That invariant is
what lets an epsilon sweep reuse trees without perturbing the sampler's
subsequent representative draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..memo.split_tree import (
    DEGENERATE,
    SplitNode,
    SplitTreeCache,
    build_split_tree,
)
from .stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    kkt_sample_sizes,
    predicted_simulated_time,
    single_cluster_sample_size,
)

__all__ = [
    "RootConfig",
    "RootCluster",
    "root_split",
    "select_leaves",
    "RootTreeNode",
]


@dataclass(frozen=True)
class RootConfig:
    """Tuning knobs of the ROOT recursion."""

    epsilon: float = DEFAULT_EPSILON
    z: float = DEFAULT_Z
    #: Subclusters per split; the paper uses 2 and notes any k >= 2 works.
    k: int = 2
    #: Clusters smaller than this are never split further.
    min_cluster_size: int = 8
    #: Hard recursion-depth cap (2^16 leaves is far beyond any real need).
    max_depth: int = 16

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.min_cluster_size < 2:
            raise ValueError("min_cluster_size must be at least 2")
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")


@dataclass(frozen=True)
class RootCluster:
    """A leaf cluster: invocation indices plus their time statistics."""

    indices: np.ndarray
    stats: ClusterStats
    depth: int = 0

    @property
    def size(self) -> int:
        return len(self.indices)


@dataclass
class RootTreeNode:
    """Optional record of the recursion tree, for inspection and plots."""

    stats: ClusterStats
    depth: int
    accepted_split: bool = False
    children: List["RootTreeNode"] = field(default_factory=list)

    def leaf_count(self) -> int:
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)


def _split_gain(
    parent: ClusterStats,
    children: List[ClusterStats],
    config: RootConfig,
) -> bool:
    """Eqs. (7)–(8): does the split reduce predicted simulated time?

    tau_old uses the single-cluster Eq. (3) sample size; tau_new uses the
    joint KKT allocation (Eq. 6) over the children.
    """
    accepted, _, _ = _split_decision(parent, children, config)
    return accepted


def _split_decision(
    parent: ClusterStats,
    children: List[ClusterStats],
    config: RootConfig,
) -> tuple:
    """The Eq. (7)–(8) test plus both predicted times, for observability."""
    m_old = single_cluster_sample_size(parent, epsilon=config.epsilon, z=config.z)
    tau_old = m_old * parent.mu
    m_new = kkt_sample_sizes(children, epsilon=config.epsilon, z=config.z)
    tau_new = predicted_simulated_time(children, m_new)
    return tau_new < tau_old, tau_old, tau_new


def root_split(
    times: np.ndarray,
    indices: Optional[np.ndarray] = None,
    config: Optional[RootConfig] = None,
    rng: Optional[np.random.Generator] = None,
    tree: Optional[RootTreeNode] = None,
    tree_cache: Optional[SplitTreeCache] = None,
) -> List[RootCluster]:
    """Recursively cluster one kernel's invocations by execution time.

    Parameters
    ----------
    times:
        Execution times of *all* invocations in this cluster.
    indices:
        Workload-level invocation indices corresponding to ``times``
        (defaults to ``arange(len(times))``).
    config:
        Recursion knobs; defaults to the paper's settings.
    rng:
        Randomness source; exactly one draw is consumed (the k-means
        seeding salt) per call.
    tree:
        When given, the recursion records its decisions into this node.
    tree_cache:
        Optional :class:`~repro.memo.SplitTreeCache`; the candidate
        split tree for this (times, indices, salt, structural-knobs)
        combination is reused across calls — epsilon is absent from the
        key, so an epsilon sweep at a fixed seed clusters each kernel
        group once and re-walks acceptance per bound.

    Returns
    -------
    The list of leaf clusters whose union is exactly the input.
    """
    t = np.asarray(times, dtype=np.float64)
    if indices is None:
        indices = np.arange(len(t), dtype=np.int64)
    else:
        indices = np.asarray(indices, dtype=np.int64)
    if len(t) != len(indices):
        raise ValueError("times and indices must align")
    if len(t) == 0:
        return []
    if config is None:
        config = RootConfig()
    if rng is None:
        rng = np.random.default_rng(0)

    salt = int(rng.integers(0, np.iinfo(np.int64).max))
    if tree_cache is not None:
        key = SplitTreeCache.key_for(
            t, indices, salt, config.k, config.min_cluster_size, config.max_depth
        )
        node = tree_cache.get_or_build(
            key, lambda: build_split_tree(t, indices, salt)
        )
    else:
        node = build_split_tree(t, indices, salt)
    # One span per kernel group; the walk below reports its decisions
    # through counters/histograms, not per-node spans.
    with obs.span("root.split", invocations=int(len(t))):
        leaves = select_leaves(node, config, tree=tree)
        obs.observe("root.leaves_per_group", float(len(leaves)))
        return leaves


def select_leaves(
    node: SplitNode,
    config: RootConfig,
    tree: Optional[RootTreeNode] = None,
) -> List[RootCluster]:
    """Walk a candidate split tree, applying the Eq. (7)–(8) acceptance.

    The epsilon-dependent half of ROOT: it expands the tree lazily where
    (and only where) splits are accepted, so walking a cached tree at a
    new error bound re-evaluates acceptance and re-solves the per-split
    KKT allocations without redoing any k-means that both bounds share.
    """
    stats = node.stats
    if tree is not None:
        tree.stats = stats
        tree.depth = node.depth
    leaf = RootCluster(indices=node.indices, stats=stats, depth=node.depth)

    children = node.ensure_children(
        config.k, config.min_cluster_size, config.max_depth
    )
    if not children:
        if node.leaf_reason == DEGENERATE:
            obs.inc("root.degenerate_kmeans")
        else:
            obs.inc("root.stop_conditions")
        return [leaf]
    children_stats = [child.stats for child in children]

    accepted, tau_old, tau_new = _split_decision(stats, children_stats, config)
    obs.log_event(
        "root.split_decision",
        level="debug",
        depth=node.depth,
        size=node.size,
        accepted=accepted,
        tau_old=tau_old,
        tau_new=tau_new,
    )
    if not accepted:
        obs.inc("root.splits_rejected")
        return [leaf]
    obs.inc("root.splits_accepted")
    obs.observe("root.split_depth", float(node.depth))
    obs.observe("root.predicted_time_delta", tau_old - tau_new)

    if tree is not None:
        tree.accepted_split = True
    leaves: List[RootCluster] = []
    for child in children:
        child_tree = None
        if tree is not None:
            child_tree = RootTreeNode(stats=stats, depth=node.depth + 1)
            tree.children.append(child_tree)
        leaves.extend(select_leaves(child, config, tree=child_tree))
    return leaves
