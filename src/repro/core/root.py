"""ROOT: recursive fine-grained clustering of kernel execution times.

Section 3.4 of the paper: given the invocations of one kernel, ROOT
recursively splits them by k-means on execution time (k=2 by default) and
keeps a split only if STEM predicts the split lowers total simulated time
(Eqs. 7–8).  The recursion isolates each performance peak into its own
cluster without knowing the number of peaks a priori, and stops before
over-partitioning: splitting a unimodal cluster does not reduce variance
enough to pay for the extra per-cluster samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from .clustering import kmeans_1d
from .stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    kkt_sample_sizes,
    predicted_simulated_time,
    single_cluster_sample_size,
)

__all__ = ["RootConfig", "RootCluster", "root_split", "RootTreeNode"]


@dataclass(frozen=True)
class RootConfig:
    """Tuning knobs of the ROOT recursion."""

    epsilon: float = DEFAULT_EPSILON
    z: float = DEFAULT_Z
    #: Subclusters per split; the paper uses 2 and notes any k >= 2 works.
    k: int = 2
    #: Clusters smaller than this are never split further.
    min_cluster_size: int = 8
    #: Hard recursion-depth cap (2^16 leaves is far beyond any real need).
    max_depth: int = 16

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.min_cluster_size < 2:
            raise ValueError("min_cluster_size must be at least 2")
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")


@dataclass(frozen=True)
class RootCluster:
    """A leaf cluster: invocation indices plus their time statistics."""

    indices: np.ndarray
    stats: ClusterStats
    depth: int = 0

    @property
    def size(self) -> int:
        return len(self.indices)


@dataclass
class RootTreeNode:
    """Optional record of the recursion tree, for inspection and plots."""

    stats: ClusterStats
    depth: int
    accepted_split: bool = False
    children: List["RootTreeNode"] = field(default_factory=list)

    def leaf_count(self) -> int:
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)


def _split_gain(
    parent: ClusterStats,
    children: List[ClusterStats],
    config: RootConfig,
) -> bool:
    """Eqs. (7)–(8): does the split reduce predicted simulated time?

    tau_old uses the single-cluster Eq. (3) sample size; tau_new uses the
    joint KKT allocation (Eq. 6) over the children.
    """
    accepted, _, _ = _split_decision(parent, children, config)
    return accepted


def _split_decision(
    parent: ClusterStats,
    children: List[ClusterStats],
    config: RootConfig,
) -> tuple:
    """The Eq. (7)–(8) test plus both predicted times, for observability."""
    m_old = single_cluster_sample_size(parent, epsilon=config.epsilon, z=config.z)
    tau_old = m_old * parent.mu
    m_new = kkt_sample_sizes(children, epsilon=config.epsilon, z=config.z)
    tau_new = predicted_simulated_time(children, m_new)
    return tau_new < tau_old, tau_old, tau_new


def root_split(
    times: np.ndarray,
    indices: Optional[np.ndarray] = None,
    config: Optional[RootConfig] = None,
    rng: Optional[np.random.Generator] = None,
    tree: Optional[RootTreeNode] = None,
    _depth: int = 0,
) -> List[RootCluster]:
    """Recursively cluster one kernel's invocations by execution time.

    Parameters
    ----------
    times:
        Execution times of *all* invocations in this cluster.
    indices:
        Workload-level invocation indices corresponding to ``times``
        (defaults to ``arange(len(times))``).
    config:
        Recursion knobs; defaults to the paper's settings.
    rng:
        Randomness source for k-means seeding.
    tree:
        When given, the recursion records its decisions into this node.

    Returns
    -------
    The list of leaf clusters whose union is exactly the input.
    """
    t = np.asarray(times, dtype=np.float64)
    if indices is None:
        indices = np.arange(len(t), dtype=np.int64)
    else:
        indices = np.asarray(indices, dtype=np.int64)
    if len(t) != len(indices):
        raise ValueError("times and indices must align")
    if len(t) == 0:
        return []
    if config is None:
        config = RootConfig()
    if rng is None:
        rng = np.random.default_rng(0)

    if _depth == 0:
        # One span per kernel group; the recursion below reports its
        # decisions through counters/histograms, not per-node spans.
        with obs.span("root.split", invocations=int(len(t))):
            leaves = _split_recursive(t, indices, config, rng, tree, _depth)
            obs.observe("root.leaves_per_group", float(len(leaves)))
            return leaves
    return _split_recursive(t, indices, config, rng, tree, _depth)


def _split_recursive(
    t: np.ndarray,
    indices: np.ndarray,
    config: RootConfig,
    rng: np.random.Generator,
    tree: Optional[RootTreeNode],
    _depth: int,
) -> List[RootCluster]:
    stats = ClusterStats.from_times(t)
    if tree is not None:
        tree.stats = stats
        tree.depth = _depth
    leaf = RootCluster(indices=indices, stats=stats, depth=_depth)

    if (
        len(t) < config.min_cluster_size
        or _depth >= config.max_depth
        or stats.sigma == 0.0
    ):
        obs.inc("root.stop_conditions")
        return [leaf]

    result = kmeans_1d(t, config.k, rng=rng)
    member_lists = [m for m in result.cluster_indices() if len(m)]
    if len(member_lists) < 2:
        obs.inc("root.degenerate_kmeans")
        return [leaf]
    children_stats = [ClusterStats.from_times(t[m]) for m in member_lists]

    accepted, tau_old, tau_new = _split_decision(stats, children_stats, config)
    obs.log_event(
        "root.split_decision",
        level="debug",
        depth=_depth,
        size=len(t),
        accepted=accepted,
        tau_old=tau_old,
        tau_new=tau_new,
    )
    if not accepted:
        obs.inc("root.splits_rejected")
        return [leaf]
    obs.inc("root.splits_accepted")
    obs.observe("root.split_depth", float(_depth))
    obs.observe("root.predicted_time_delta", tau_old - tau_new)

    if tree is not None:
        tree.accepted_split = True
    leaves: List[RootCluster] = []
    for members in member_lists:
        child_tree = None
        if tree is not None:
            child_tree = RootTreeNode(stats=stats, depth=_depth + 1)
            tree.children.append(child_tree)
        leaves.extend(
            _split_recursive(
                t[members],
                indices[members],
                config,
                rng,
                child_tree,
                _depth + 1,
            )
        )
    return leaves
