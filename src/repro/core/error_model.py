"""Theoretical error-bound utilities and the Theorem 3.1 union property.

STEM's headline guarantee is *transparency*: every plan carries a
theoretical error bound derived from the CLT.  This module exposes the
bound computations at plan level and verifies the paper's Theorem 3.1 —
that the union of independently error-bounded cluster sets keeps the same
bound with the same sample sizes (the property that lets ROOT bound each
kernel-name group independently and still bound the whole workload).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


from .stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    combine_fidelity_bound,
    error_bound_satisfied,
    predicted_error_multi,
)

__all__ = [
    "plan_error_bound",
    "union_error_bound",
    "verify_union_theorem",
    "combine_fidelity_bound",
    "verify_fidelity_bound",
]


def plan_error_bound(
    clusters: Sequence[ClusterStats],
    sample_sizes: Sequence[int],
    z: float = DEFAULT_Z,
    fidelity_gap: float = 0.0,
) -> float:
    """Theoretical error (fraction) of an allocation: Eq. (4)/(5).

    ``fidelity_gap`` widens the bound via
    :func:`~repro.core.stem.combine_fidelity_bound` when the ground truth
    the plan will be scored against is (partly) analytical.
    """
    return predicted_error_multi(
        clusters, sample_sizes, z=z, fidelity_gap=fidelity_gap
    )


def union_error_bound(
    cluster_sets: Sequence[Sequence[ClusterStats]],
    sample_size_sets: Sequence[Sequence[int]],
    z: float = DEFAULT_Z,
) -> float:
    """Theoretical error of the union of several cluster sets.

    This is the left-hand side the Theorem 3.1 proof bounds: all clusters
    pooled, each keeping the sample size assigned within its own set.
    """
    pooled_clusters: List[ClusterStats] = []
    pooled_sizes: List[int] = []
    for clusters, sizes in zip(cluster_sets, sample_size_sets):
        if len(clusters) != len(sizes):
            raise ValueError("cluster and sample-size sets must align")
        pooled_clusters.extend(clusters)
        pooled_sizes.extend(int(m) for m in sizes)
    return predicted_error_multi(pooled_clusters, pooled_sizes, z=z)


def verify_union_theorem(
    cluster_sets: Sequence[Sequence[ClusterStats]],
    sample_size_sets: Sequence[Sequence[int]],
    epsilon: float = DEFAULT_EPSILON,
    z: float = DEFAULT_Z,
) -> Tuple[bool, float]:
    """Check Theorem 3.1 on concrete data.

    Returns ``(holds, union_error)`` where ``holds`` is True when either
    some individual set violates its bound (theorem precondition fails —
    vacuously true) or the union respects the bound.  With valid inputs
    the union error can never exceed ``epsilon``; the test suite exercises
    this over randomized cluster sets.
    """
    for clusters, sizes in zip(cluster_sets, sample_size_sets):
        if not error_bound_satisfied(clusters, sizes, epsilon=epsilon, z=z):
            return True, float("nan")
    union_error = union_error_bound(cluster_sets, sample_size_sets, z=z)
    return union_error <= epsilon * (1 + 1e-9), union_error


def verify_fidelity_bound(
    estimated_total: float,
    cycle_truth_total: float,
    epsilon: float = DEFAULT_EPSILON,
    fidelity_gap: float = 0.0,
) -> Tuple[bool, float, float]:
    """Empirically check the combined (ε + fidelity-gap) bound.

    The multi-fidelity analogue of :func:`verify_union_theorem`: given an
    estimate produced from (partly) screened values and the cycle-level
    truth, returns ``(holds, achieved_error, bound)`` where ``bound`` is
    :func:`~repro.core.stem.combine_fidelity_bound`'s widened ε and
    ``achieved_error`` is the realized relative error versus cycle-level
    truth.  The honesty tests drive this across seeds, fault plans and
    every DSE variant.
    """
    if cycle_truth_total == 0:
        raise ValueError("cycle-level truth total must be non-zero")
    bound = combine_fidelity_bound(epsilon, fidelity_gap)
    achieved = abs(estimated_total - cycle_truth_total) / abs(cycle_truth_total)
    return achieved <= bound * (1 + 1e-9), achieved, bound
