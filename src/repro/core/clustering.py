"""Clustering primitives used by ROOT and the PKA baseline.

ROOT needs a k-means over 1-D execution times (k=2 by default); PKA runs
k-means over 12-dimensional metric vectors with k swept 1..20.  Both use
the same Lloyd implementation below with k-means++ seeding.  A Gaussian
KDE peak counter supports Sieve's optional stratification and the
histogram analysis of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import stats as _scipy_stats

from ..errors import ReproError

__all__ = [
    "KMeansResult",
    "kmeans",
    "kmeans_1d",
    "count_kde_peaks",
    "silhouette_score",
    "SILHOUETTE_MAX_POINTS",
]

#: Hard cap for :func:`silhouette_score` — beyond this the O(n^2)
#: distance matrix (200+ MB at n=5000) stops being a diagnostic and
#: starts being an outage.
SILHOUETTE_MAX_POINTS = 5000


@dataclass(frozen=True)
class KMeansResult:
    """Labels, centers, and inertia of one k-means run."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        return len(self.centers)

    def cluster_indices(self) -> List[np.ndarray]:
        """Member positions of each cluster (empty clusters included)."""
        return [np.flatnonzero(self.labels == j) for j in range(self.k)]


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances via the expansion identity.

    Avoids materializing an (n, k, d) intermediate, which matters when PKA
    clusters tens of thousands of 12-dimensional metric vectors.
    """
    sq = (
        (points**2).sum(axis=1)[:, None]
        - 2.0 * points @ centers.T
        + (centers**2).sum(axis=1)[None, :]
    )
    return np.maximum(sq, 0.0)


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = ((points - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a chosen center.
            centers[j:] = centers[0]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centers[j] = points[pick]
        dist_sq = ((points - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    n_init: int = 3,
    max_iter: int = 50,
    tol: float = 1e-7,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ seeding over ``n_init`` restarts.

    ``points`` is ``(n, d)`` (a 1-D array is treated as ``(n, 1)``).
    Empty clusters are re-seeded to the point farthest from its center, so
    the returned result always has ``k`` centers but possibly some with no
    members when ``n < k``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    n = len(pts)
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if rng is None:
        rng = np.random.default_rng(0)
    k_eff = min(k, n)

    d = pts.shape[1]
    best: Optional[KMeansResult] = None
    for _ in range(max(1, n_init)):
        centers = _kmeanspp_init(pts, k_eff, rng)
        dists = _pairwise_sq_dists(pts, centers)
        labels = dists.argmin(axis=1)
        for _iteration in range(max_iter):
            # Update step, vectorized: one bincount per dimension replaces
            # the per-cluster member scan.
            counts = np.bincount(labels, minlength=k_eff).astype(np.float64)
            sums = np.empty((k_eff, d), dtype=np.float64)
            for dim in range(d):
                sums[:, dim] = np.bincount(
                    labels, weights=pts[:, dim], minlength=k_eff
                )
            nonempty = counts > 0
            new_centers = centers.copy()
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            if not nonempty.all():
                # Re-seed empty clusters at the worst-fit point.
                worst = dists[np.arange(n), labels].argmax()
                new_centers[~nonempty] = pts[worst]
            shift = float(np.abs(new_centers - centers).max())
            if shift <= tol:
                # Converged: the update moved nothing beyond tol, so the
                # assignment (and its distances) just computed against
                # ``centers`` is already final — no recomputation.
                break
            centers = new_centers
            # Assignment step (doubles as the final assignment when the
            # next update converges or max_iter runs out).
            dists = _pairwise_sq_dists(pts, centers)
            labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), labels].sum())
        if best is None or inertia < best.inertia:
            best = KMeansResult(labels=labels, centers=centers, inertia=inertia)
    assert best is not None
    if k_eff < k:
        # Pad center table so callers always see k rows.
        pad = np.repeat(best.centers[-1:], k - k_eff, axis=0)
        best = KMeansResult(
            labels=best.labels,
            centers=np.vstack([best.centers, pad]),
            inertia=best.inertia,
        )
    return best


def kmeans_1d(
    values: np.ndarray,
    k: int = 2,
    rng: Optional[np.random.Generator] = None,
    n_init: int = 3,
) -> KMeansResult:
    """k-means over scalar values (ROOT's split primitive)."""
    return kmeans(np.asarray(values, dtype=np.float64), k, rng=rng, n_init=n_init)


def count_kde_peaks(
    values: np.ndarray,
    grid_points: int = 256,
    bandwidth: Optional[float] = None,
    min_prominence: float = 0.02,
) -> int:
    """Count modes of a 1-D sample via Gaussian KDE local maxima.

    Peaks whose density is below ``min_prominence`` of the global maximum
    are ignored.  Degenerate (constant) samples count as one peak.
    """
    vals = np.asarray(values, dtype=np.float64)
    if len(vals) < 3 or np.ptp(vals) == 0:
        return 1 if len(vals) else 0
    kde = _scipy_stats.gaussian_kde(vals, bw_method=bandwidth)
    lo, hi = vals.min(), vals.max()
    pad = 0.05 * (hi - lo)
    grid = np.linspace(lo - pad, hi + pad, grid_points)
    density = kde(grid)
    interior = density[1:-1]
    peaks = (interior > density[:-2]) & (interior >= density[2:])
    significant = interior > min_prominence * density.max()
    return max(1, int(np.count_nonzero(peaks & significant)))


def silhouette_score(
    points: np.ndarray,
    labels: np.ndarray,
    max_points: int = SILHOUETTE_MAX_POINTS,
) -> float:
    """Mean silhouette coefficient (clustering diagnostics only).

    Materializes the full O(n^2) pairwise distance matrix, so it is
    capped at ``max_points`` samples (default
    :data:`SILHOUETTE_MAX_POINTS`) and raises
    :class:`~repro.errors.ReproError` above that — subsample before
    calling it on anything larger.  Never use it on a hot path.

    Returns 0.0 when fewer than two non-singleton clusters exist.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    if len(pts) > max_points:
        raise ReproError(
            f"silhouette_score got {len(pts)} points, above the "
            f"max_points={max_points} cap (the O(n^2) distance matrix "
            "would not fit a diagnostic budget); subsample first"
        )
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2 or len(pts) != len(labels):
        return 0.0
    dists = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2))
    scores = np.zeros(len(pts))
    for i in range(len(pts)):
        same = labels == labels[i]
        same[i] = False
        a = dists[i, same].mean() if same.any() else 0.0
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            if members.any():
                b = min(b, dists[i, members].mean())
        if not np.isfinite(b) or max(a, b) == 0:
            scores[i] = 0.0
        else:
            scores[i] = (b - a) / max(a, b)
    return float(scores.mean())
