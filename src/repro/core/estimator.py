"""Sampled-simulation evaluation: error and speedup of a sampling plan.

Implements the paper's evaluation definitions (Secs. 3.1 and 5):

* sampling error ``e = |t_total - t*| / t* * 100%`` (Eq. 1), where
  ``t_total`` is the plan's weighted-sum estimate and ``t*`` the full
  ground truth;
* speedup = full-workload cycles / cycles actually simulated (the unique
  sampled kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .. import obs
from ..errors import EstimationError
from ..profiling.metrics import COUNT_METRICS
from .fidelity import FidelityTimes
from .plan import SamplingPlan

__all__ = ["SampledSimulationResult", "evaluate_plan", "estimate_metrics", "sampling_error_percent"]


def sampling_error_percent(estimated: float, truth: float) -> float:
    """Eq. (1): absolute relative error, in percent.

    Raises :class:`~repro.errors.EstimationError` (a ``ValueError``
    subclass) when the ground truth is zero or either quantity is not
    finite — a zero or NaN total almost always means the profile or the
    estimate upstream was corrupt, not that the error is infinite.
    """
    if truth == 0:
        raise EstimationError(
            "ground-truth total must be non-zero: a zero total means the "
            "workload profiled to nothing — check the profile for dropped "
            "invocations (repro.resilience.validate_times can repair them)"
        )
    if not np.isfinite(truth):
        raise EstimationError(
            f"ground-truth total is {truth!r}; NaN/inf totals indicate a "
            "corrupt profile — validate or repair it before evaluating"
        )
    if not np.isfinite(estimated):
        raise EstimationError(
            f"estimated total is {estimated!r}; the plan was likely built "
            "from a corrupt profile (NaN/inf execution times)"
        )
    return abs(estimated - truth) / abs(truth) * 100.0


@dataclass(frozen=True)
class SampledSimulationResult:
    """Outcome of evaluating one plan against ground-truth times.

    When the ground truth is a
    :class:`~repro.core.fidelity.FidelityTimes`, the result carries the
    fidelity provenance of *this* evaluation: ``fidelity_tiers`` maps
    each cluster label to the tier that produced its estimate
    (``cycle`` / ``analytical`` / ``mixed``) and ``fidelity`` is a
    ledger-friendly summary.  Provenance lives here — one plan is often
    evaluated against several ground truths (e.g. every DSE hardware
    variant), and per-result fields cannot clobber each other the way a
    single shared ``plan.metadata`` slot would.
    """

    method: str
    workload: str
    true_total: float
    estimated_total: float
    simulated_time: float
    num_samples: int
    num_unique_samples: int
    num_clusters: int
    fidelity_tiers: "Dict[str, str] | None" = None
    fidelity: "Dict[str, object] | None" = None

    @property
    def error_percent(self) -> float:
        return sampling_error_percent(self.estimated_total, self.true_total)

    @property
    def speedup(self) -> float:
        """Full simulation length over sampled simulation length."""
        if self.simulated_time <= 0:
            return float("inf")
        return self.true_total / self.simulated_time

    def summary(self) -> Dict[str, float]:
        return {
            "error_percent": self.error_percent,
            "speedup": self.speedup,
            "num_samples": float(self.num_samples),
            "num_unique_samples": float(self.num_unique_samples),
            "num_clusters": float(self.num_clusters),
        }


def evaluate_plan(plan: SamplingPlan, times: np.ndarray) -> SampledSimulationResult:
    """Score a sampling plan against per-invocation ground-truth times.

    ``times`` may be a plain array (the legacy cycle-level path — left
    byte-for-byte untouched) or a
    :class:`~repro.core.fidelity.FidelityTimes`, in which case the
    result records which fidelity tier produced each cluster's estimate
    (``result.fidelity_tiers``) plus a run-ledger-friendly summary
    (``result.fidelity``), so degraded/hybrid runs stay distinguishable.
    The same summary is also filed under
    ``plan.metadata["fidelity"][<label or mode>]`` — keyed by
    ``FidelityTimes.label`` (e.g. the DSE variant) so evaluating one
    plan against several ground truths accumulates one entry each
    instead of overwriting a single slot.

    Raises :class:`~repro.errors.EstimationError` when the plan and the
    ground truth disagree on the workload size — indexing a truth array
    of the wrong length would either crash deep inside numpy or, worse,
    silently score against the wrong invocations.
    """
    fidelity: "FidelityTimes | None" = None
    if isinstance(times, FidelityTimes):
        fidelity = times
        times = fidelity.values
    times = np.asarray(times)
    expected = plan.represented_invocations
    if plan.clusters and len(times) != expected:
        raise EstimationError(
            f"plan for {plan.workload_name!r} represents {expected} "
            f"invocations but the ground truth has {len(times)} entries; "
            "was the profile truncated, or built at a different scale?"
        )
    tiers: "Dict[str, str] | None" = None
    summary: "Dict[str, object] | None" = None
    if fidelity is not None:
        mask = fidelity.cycle_mask
        tiers = {}
        for cluster in plan.clusters:
            sampled = np.asarray(cluster.sampled_indices, dtype=np.int64)
            hits = int(mask[sampled].sum()) if len(sampled) else 0
            if hits == len(sampled):
                tiers[cluster.label] = "cycle"
            elif hits == 0:
                tiers[cluster.label] = "analytical"
            else:
                tiers[cluster.label] = "mixed"
        summary = {
            "mode": fidelity.mode,
            "label": fidelity.label,
            "gap": fidelity.gap,
            "effective_gap": fidelity.effective_gap,
            "cycle_share": 1.0 - fidelity.analytical_share,
            "probes": fidelity.probes,
            "escalations": fidelity.escalations,
            "tiers": tiers,
        }
        # Keyed, not overwritten: one plan scored against N ground
        # truths (one per DSE variant) keeps N distinct entries, so any
        # later serialization of the plan stays faithful.
        plan.metadata.setdefault("fidelity", {})[
            fidelity.label or fidelity.mode
        ] = summary
    with obs.span("sim.evaluate_plan", method=plan.method):
        true_total = float(np.sum(times))
        estimated = plan.estimate_total(times)
        result = SampledSimulationResult(
            method=plan.method,
            workload=plan.workload_name,
            true_total=true_total,
            estimated_total=estimated,
            simulated_time=plan.simulated_cost(times),
            num_samples=plan.num_samples,
            num_unique_samples=len(plan.unique_indices()),
            num_clusters=plan.num_clusters,
            fidelity_tiers=tiers,
            fidelity=summary,
        )
    # The sampled simulation executes exactly the plan's unique kernels.
    obs.inc("sim.plan_evaluations")
    obs.inc("sim.kernels_executed", result.num_unique_samples)
    obs.set_gauge("sim.sampled_time_share", result.simulated_time / true_total
                  if true_total else 0.0)
    obs.log_event(
        "sim.plan_evaluated",
        method=plan.method,
        workload=plan.workload_name,
        error_percent=result.error_percent,
        speedup=result.speedup,
        kernels_executed=result.num_unique_samples,
    )
    return result


def estimate_metrics(
    plan: SamplingPlan, per_invocation: Dict[str, np.ndarray]
) -> Dict[str, float]:
    """Weighted-sum estimate of workload-level microarchitectural metrics.

    Count metrics extrapolate by cluster weights (``N_i * mean over the
    cluster's samples``); rate metrics take the weight-proportional mean —
    mirroring :func:`repro.profiling.metrics.aggregate_metrics` so the
    estimate is directly comparable with the full-workload aggregate.
    """
    estimates: Dict[str, float] = {}
    total_represented = float(plan.represented_invocations)
    for name, values in per_invocation.items():
        total = plan.estimate_total(values)
        if name in COUNT_METRICS:
            estimates[name] = total
        else:
            estimates[name] = total / total_represented
    return estimates


def metric_error_percents(
    full: Dict[str, float], estimated: Dict[str, float]
) -> Dict[str, float]:
    """Per-metric sampling error (%) between full and estimated values."""
    errors: Dict[str, float] = {}
    for name, truth in full.items():
        if name not in estimated:
            continue
        if truth == 0:
            errors[name] = 0.0 if estimated[name] == 0 else float("inf")
        else:
            errors[name] = abs(estimated[name] - truth) / abs(truth) * 100.0
    return errors


__all__.append("metric_error_percents")
