"""STEM: Statistical Error Modeling for sampled GPU simulation.

Implements the paper's Section 3.2–3.3:

* Eq. (2): the CLT-based relative error of estimating a cluster's total
  execution time from ``m`` samples,
* Eq. (3): the minimal single-cluster sample size meeting an error bound,
* Eq. (5): the joint multi-cluster error-bound inequality, and
* Eq. (6): the KKT-optimal sample-size allocation minimizing total
  simulated time subject to that bound (Problem 1 / Appendix 9.1).

Everything operates on :class:`ClusterStats` — the ``(N, mu, sigma)``
summary of a cluster of kernel invocations' execution times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

from .. import obs

__all__ = [
    "DEFAULT_Z",
    "DEFAULT_EPSILON",
    "ClusterStats",
    "z_score",
    "single_cluster_sample_size",
    "predicted_error_single",
    "kkt_sample_sizes",
    "predicted_error_multi",
    "error_bound_satisfied",
    "predicted_simulated_time",
    "combine_fidelity_bound",
]

#: z-score at 95% confidence, the paper's default.
DEFAULT_Z = 1.96
#: Default error bound (epsilon = 5%).
DEFAULT_EPSILON = 0.05


def z_score(confidence: float) -> float:
    """Two-sided standard score for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))


@dataclass(frozen=True)
class ClusterStats:
    """Summary statistics of one cluster of kernel invocations."""

    n: int
    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("cluster size must be positive")
        if self.mu <= 0:
            raise ValueError("mean execution time must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @classmethod
    def from_times(cls, times: np.ndarray) -> "ClusterStats":
        t = np.asarray(times, dtype=np.float64)
        if len(t) == 0:
            raise ValueError("cannot summarize an empty cluster")
        return cls(n=len(t), mu=float(t.mean()), sigma=float(t.std()))

    @property
    def cov(self) -> float:
        """Coefficient of variation, sigma/mu."""
        return self.sigma / self.mu

    @property
    def total(self) -> float:
        """True total time of the cluster, N * mu."""
        return self.n * self.mu


def single_cluster_sample_size(
    stats: ClusterStats,
    epsilon: float = DEFAULT_EPSILON,
    z: float = DEFAULT_Z,
) -> int:
    """Eq. (3): minimal samples for a single cluster.

    ``m = ceil((z/eps * sigma/mu)^2)``, floored at 1 so every cluster is
    represented even when its variance is zero.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if stats.sigma == 0.0:
        return 1
    m = math.ceil((z / epsilon * stats.cov) ** 2)
    return max(1, m)


def predicted_error_single(stats: ClusterStats, m: int, z: float = DEFAULT_Z) -> float:
    """Eq. (2): theoretical relative error with ``m`` samples (fraction)."""
    if m <= 0:
        raise ValueError("m must be positive")
    return z * stats.sigma / (stats.mu * math.sqrt(m))


def kkt_sample_sizes(
    clusters: Sequence[ClusterStats],
    epsilon: float = DEFAULT_EPSILON,
    z: float = DEFAULT_Z,
) -> np.ndarray:
    """Eq. (6): jointly optimal integer sample sizes for many clusters.

    Solves Problem 1: minimize total simulated time ``sum_i m_i mu_i``
    subject to the joint error bound Eq. (5).  With
    ``a_i = mu_i``, ``b_i = N_i^2 sigma_i^2`` and
    ``c = (eps * sum_i N_i mu_i / z)^2``::

        m_i = ceil( (sum_j sqrt(a_j b_j)) / c * sqrt(b_i / a_i) )

    following the appendix 9.1 derivation: the stationary point gives
    ``m_i = sqrt(lambda b_i / a_i)`` and the active constraint yields
    ``sqrt(lambda) = sum_j sqrt(a_j b_j) / c``.  (The paper's Eq. (6)
    typesets the factor as ``sqrt(sum_j a_j b_j)``, but substituting that
    back into the constraint violates the bound whenever more than one
    cluster has variance — the appendix form is the correct solution.)

    Zero-variance clusters get ``b_i = 0`` hence the minimum of one
    sample.  The ceiling introduces the paper's "minor sub-optimality" but
    keeps the bound valid (larger ``m_i`` can only shrink the error).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not clusters:
        return np.zeros(0, dtype=np.int64)
    a = np.array([c.mu for c in clusters], dtype=np.float64)
    b = np.array([(c.n * c.sigma) ** 2 for c in clusters], dtype=np.float64)
    total = float(sum(c.total for c in clusters))
    c_const = (epsilon * total / z) ** 2
    scale = float(np.sqrt(a * b).sum()) / c_const if c_const > 0 else 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = scale * np.sqrt(b / a)
    raw = np.nan_to_num(raw, nan=0.0, posinf=0.0)
    sizes = np.maximum(1, np.ceil(raw)).astype(np.int64)
    # KKT runs both as the final allocator and inside every ROOT split
    # test, so the call count tracks Eq. (7)–(8) evaluations too.
    obs.inc("stem.kkt_calls")
    obs.observe("stem.kkt_clusters", float(len(clusters)))
    return sizes


def combine_fidelity_bound(epsilon: float, fidelity_gap: float) -> float:
    """Honest error bound of a sampled estimate versus *cycle-level* truth.

    When ground-truth values ``V`` come from a lower-fidelity tier with
    ``|sum(V) - T| <= g * T`` against the cycle-level total ``T``, and the
    sampling guarantee is ``|E - sum(V)| <= eps * sum(V)``, the triangle
    inequality gives::

        |E - T| <= eps * sum(V) + g * T
                <= eps * (1 + g) * T + g * T = (eps * (1 + g) + g) * T

    so the combined bound is ``eps * (1 + g) + g``.  With ``g == 0``
    (pure cycle-level truth) this is exactly ``eps``.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if fidelity_gap < 0:
        raise ValueError("fidelity_gap must be non-negative")
    return epsilon * (1.0 + fidelity_gap) + fidelity_gap


def predicted_error_multi(
    clusters: Sequence[ClusterStats],
    sample_sizes: Sequence[int],
    z: float = DEFAULT_Z,
    fidelity_gap: float = 0.0,
) -> float:
    """Joint theoretical error (fraction) from Eq. (4)/(5):

    ``e = z * sqrt(sum_i N_i^2 sigma_i^2 / m_i) / sum_i N_i mu_i``.

    With a non-zero ``fidelity_gap`` the CLT error (which bounds the
    estimate against the screened values) is widened through
    :func:`combine_fidelity_bound` so the result bounds the estimate
    against cycle-level truth.
    """
    if len(clusters) != len(sample_sizes):
        raise ValueError("clusters and sample_sizes must align")
    if not clusters:
        return 0.0
    variance = 0.0
    total = 0.0
    for c, m in zip(clusters, sample_sizes):
        if m <= 0:
            raise ValueError("sample sizes must be positive")
        variance += (c.n * c.sigma) ** 2 / m
        total += c.total
    sampling_error = z * math.sqrt(variance) / total
    if fidelity_gap:
        return combine_fidelity_bound(sampling_error, fidelity_gap)
    return sampling_error


def error_bound_satisfied(
    clusters: Sequence[ClusterStats],
    sample_sizes: Sequence[int],
    epsilon: float = DEFAULT_EPSILON,
    z: float = DEFAULT_Z,
    rtol: float = 1e-9,
) -> bool:
    """Check the Eq. (5) inequality for a sample-size allocation."""
    return predicted_error_multi(clusters, sample_sizes, z=z) <= epsilon * (1 + rtol)


def predicted_simulated_time(
    clusters: Sequence[ClusterStats], sample_sizes: Sequence[int]
) -> float:
    """tau = sum_i m_i mu_i — the proxy for sampled-simulation length."""
    if len(clusters) != len(sample_sizes):
        raise ValueError("clusters and sample_sizes must align")
    return float(sum(m * c.mu for c, m in zip(clusters, sample_sizes)))


def per_cluster_sample_sizes(
    clusters: Sequence[ClusterStats],
    epsilon: float = DEFAULT_EPSILON,
    z: float = DEFAULT_Z,
) -> np.ndarray:
    """Apply Eq. (3) independently per cluster (the non-joint baseline).

    This is the allocation the paper's Sec. 3.3 improves on: it enforces
    the bound on *every* cluster separately and typically needs 2–3x more
    samples than :func:`kkt_sample_sizes`.
    """
    obs.inc("stem.eq3_calls")
    return np.array(
        [single_cluster_sample_size(c, epsilon=epsilon, z=z) for c in clusters],
        dtype=np.int64,
    )


# re-exported convenience
__all__.append("per_cluster_sample_sizes")
