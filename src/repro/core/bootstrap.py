"""Bootstrap confidence intervals for sampled-simulation estimates.

STEM's CLT bound is *a priori*: it holds for the planned sample sizes
before any sample is drawn.  After the sampled simulation has run, a
bootstrap over the collected samples gives an *a posteriori* confidence
interval on the total-time estimate — a practical companion for users
who want error bars on a specific run rather than a design-time bound.

The resampling respects the plan's stratification: each cluster's samples
are resampled with replacement within the cluster, the weighted-sum
estimate is recomputed, and the interval comes from percentiles of the
bootstrap distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .plan import SamplingPlan

__all__ = ["BootstrapInterval", "bootstrap_estimate"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap confidence interval on the estimated total."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    num_resamples: int

    @property
    def half_width_percent(self) -> float:
        """Half-width of the interval relative to the estimate, percent."""
        if self.estimate == 0:
            return float("inf")
        return (self.upper - self.lower) / 2.0 / abs(self.estimate) * 100.0

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_estimate(
    plan: SamplingPlan,
    times: np.ndarray,
    confidence: float = 0.95,
    num_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> BootstrapInterval:
    """Stratified bootstrap CI for a plan's total-time estimate.

    Clusters with a single sample contribute no resampling variance
    (their one observation is pinned) — exactly the blind spot that makes
    single-sample-per-cluster baselines overconfident, visible here as
    deceptively tight intervals around possibly-biased estimates.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 1:
        raise ValueError("num_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)

    cluster_values = [times[c.sampled_indices] for c in plan.clusters]
    weights = np.array([c.member_count for c in plan.clusters], dtype=np.float64)

    estimates = np.empty(num_resamples, dtype=np.float64)
    for b in range(num_resamples):
        total = 0.0
        for values, weight in zip(cluster_values, weights):
            if len(values) == 1:
                total += weight * float(values[0])
            else:
                resample = values[rng.integers(0, len(values), size=len(values))]
                total += weight * float(resample.mean())
        estimates[b] = total

    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=plan.estimate_total(times),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        num_resamples=num_resamples,
    )
