"""Simulation-budget planning: inverting STEM's error/time tradeoff.

STEM answers "how many samples for error bound ε?".  Users often ask the
inverse: "I can afford to simulate τ microseconds — what error bound is
achievable, and what plan spends my budget best?"  The KKT solution makes
the inversion closed-form: with ``a_i = μ_i`` and ``b_i = N_i²σ_i²``, the
continuous-optimal simulated time at bound ε is

    τ(ε) = Σ_i m_i μ_i = (z/ε)² · (Σ_j √(a_j b_j))² / (Σ_i N_i μ_i)²

so τ scales as 1/ε² and

    ε(τ) = z · Σ_j √(a_j b_j) / (Σ_i N_i μ_i · √(τ · Σ_i N_i μ_i))  —

equivalently ``ε = sqrt(τ(1)/τ)`` relative to any reference point.  The
per-cluster sample floor (m_i ≥ 1) makes small budgets unreachable; the
planner reports the floor cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .stem import (
    DEFAULT_Z,
    ClusterStats,
    kkt_sample_sizes,
    predicted_error_multi,
    predicted_simulated_time,
)

__all__ = ["BudgetPlan", "epsilon_for_budget", "plan_for_budget"]


@dataclass(frozen=True)
class BudgetPlan:
    """Outcome of planning against a simulated-time budget."""

    target_budget: float
    achievable_epsilon: float
    sample_sizes: np.ndarray
    predicted_time: float
    predicted_error: float
    #: Minimum possible simulated time (one sample per cluster).
    floor_time: float

    @property
    def within_budget(self) -> bool:
        return self.predicted_time <= self.target_budget * (1 + 1e-9)


def epsilon_for_budget(
    clusters: Sequence[ClusterStats],
    budget: float,
    z: float = DEFAULT_Z,
) -> float:
    """Smallest error bound whose continuous-optimal time fits ``budget``.

    Ignores the one-sample floor (handled by :func:`plan_for_budget`);
    returns ``inf``-like 1.0 ceiling-free values are never produced —
    the result is clamped to (0, 1].
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    if not clusters:
        raise ValueError("need at least one cluster")
    sqrt_ab = sum(math.sqrt(c.mu) * c.n * c.sigma for c in clusters)
    if sqrt_ab == 0:
        # All clusters are zero-variance: any epsilon is achievable.
        return 1e-12
    total = sum(c.total for c in clusters)
    epsilon = z * sqrt_ab / (total * math.sqrt(budget))
    return min(epsilon, 1.0)


def plan_for_budget(
    clusters: Sequence[ClusterStats],
    budget: float,
    z: float = DEFAULT_Z,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> BudgetPlan:
    """Integer sample-size allocation that best uses a time budget.

    Starts from the closed-form epsilon and bisects around the integer
    effects (ceilings and one-sample floors) so the realized
    ``Σ m_i μ_i`` lands at or just under the budget.  When even the
    one-sample floor exceeds the budget, the floor allocation is returned
    with ``within_budget == False``.
    """
    floor_sizes = np.ones(len(clusters), dtype=np.int64)
    floor_time = predicted_simulated_time(clusters, floor_sizes)
    if floor_time >= budget:
        return BudgetPlan(
            target_budget=budget,
            achievable_epsilon=predicted_error_multi(clusters, floor_sizes, z=z),
            sample_sizes=floor_sizes,
            predicted_time=floor_time,
            predicted_error=predicted_error_multi(clusters, floor_sizes, z=z),
            floor_time=floor_time,
        )

    # Clamp the bracket away from zero: with near-zero variances the
    # closed-form epsilon underflows, and any positive bound already fits.
    lo = max(epsilon_for_budget(clusters, budget, z=z) * 0.25, 1e-12)
    # Integer ceilings and per-cluster caps can keep tau above the budget
    # even at epsilon = 1; expand the bracket until it fits (the floor
    # check above guarantees a fitting allocation exists).
    hi = 1.0
    best: Optional[BudgetPlan] = None
    for _ in range(64):
        sizes = np.minimum(
            kkt_sample_sizes(clusters, epsilon=hi, z=z), [c.n for c in clusters]
        )
        tau = predicted_simulated_time(clusters, sizes)
        if tau <= budget:
            # Seed the search with the first feasible endpoint.
            best = BudgetPlan(
                target_budget=budget,
                achievable_epsilon=hi,
                sample_sizes=sizes,
                predicted_time=tau,
                predicted_error=predicted_error_multi(clusters, sizes, z=z),
                floor_time=floor_time,
            )
            break
        hi *= 2.0
    for _ in range(max_iterations):
        epsilon = math.sqrt(lo * hi)
        sizes = kkt_sample_sizes(clusters, epsilon=epsilon, z=z)
        sizes = np.minimum(sizes, [c.n for c in clusters])
        tau = predicted_simulated_time(clusters, sizes)
        if tau <= budget:
            candidate = BudgetPlan(
                target_budget=budget,
                achievable_epsilon=epsilon,
                sample_sizes=sizes,
                predicted_time=tau,
                predicted_error=predicted_error_multi(clusters, sizes, z=z),
                floor_time=floor_time,
            )
            if best is None or candidate.achievable_epsilon < best.achievable_epsilon:
                best = candidate
            hi = epsilon  # try a tighter bound
        else:
            lo = epsilon  # over budget: loosen
        if hi / lo < 1 + tolerance:
            break
    assert best is not None  # floor_time < budget guarantees feasibility
    return best
