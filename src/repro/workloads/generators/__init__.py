"""Benchmark-suite workload generators."""

from . import casio, huggingface, rodinia, synthetic
from .base import KernelPhase, WorkloadRegistry, assemble

__all__ = [
    "KernelPhase",
    "WorkloadRegistry",
    "assemble",
    "rodinia",
    "casio",
    "huggingface",
    "synthetic",
]
