"""HuggingFace-style large-scale LLM/ML workloads (6 workloads, Table 2).

The paper's large-scale suite serves 1000+ generated sentences or 7000+
classified images per workload, producing millions of kernel launches from
a handful of kernel types.  The generators below reproduce the structure:

* decoder LLMs (``gpt2``, ``bloom``, ``gemma``) — attention kernels whose
  work grows with the KV-cache length at every decode step, layered on top
  of per-site GEMM peaks, yielding the drifting multi-peak distributions
  that make first-chronological sampling fail;
* encoder models (``bert``, ``deit``) — fixed sequence length, launch
  counts dominated by per-layer repetition across many inputs;
* ``resnet50`` — image classification over thousands of inputs.

Counts default to the hundreds of thousands to low millions; pass
``scale`` to shrink them for tests.  Generation is fully vectorized —
building a million-launch workload takes well under a second, which is the
scalability property STEM's lightweight profiling depends on.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..kernel import InstructionMix, KernelSpec, MemoryPattern
from ..workload import Workload, WorkloadBuilder
from .base import WorkloadRegistry

__all__ = ["HUGGINGFACE", "generate", "workload_names"]

HUGGINGFACE = WorkloadRegistry("huggingface")


def _spec(
    name: str,
    grid: int,
    fp16: int = 0,
    fp32: int = 0,
    int_alu: int = 10,
    sfu: int = 0,
    loads: int = 16,
    stores: int = 6,
    shared: int = 0,
    random_fraction: float = 0.0,
    working_set_mb: float = 24.0,
    memory_boundedness: float = 0.5,
    basic_blocks: int = 24,
) -> KernelSpec:
    return KernelSpec(
        name=name,
        grid_dim=(grid, 1, 1),
        block_dim=(256, 1, 1),
        mix=InstructionMix(
            fp32=fp32,
            fp16=fp16,
            int_alu=int_alu,
            sfu=sfu,
            load_global=loads,
            store_global=stores,
            load_shared=shared,
            store_shared=shared // 2,
            branch=4,
        ),
        memory=MemoryPattern(
            stride_bytes=4,
            random_fraction=random_fraction,
            working_set_bytes=int(working_set_mb * (1 << 20)),
        ),
        memory_boundedness=memory_boundedness,
        num_basic_blocks=basic_blocks,
    )


def _decoder_llm(
    name: str,
    scale: float,
    seed: int,
    layers: int,
    sentences: int,
    tokens: int,
    hidden_scale: float,
) -> Workload:
    """A decode-loop LLM serving workload.

    Per decode step ``t`` the attention kernels process a KV cache of
    length ``t``, so their effective work grows linearly within each
    sentence; GEMMs are shape-stable per site.  Total launches:
    ``sentences * tokens * layers * kernels_per_layer``.
    """
    rng = np.random.default_rng(seed)
    sentences = max(2, int(round(sentences * scale)))
    builder = WorkloadBuilder(name=name, suite="huggingface")

    qkv = _spec(f"{name}_qkv_gemm", grid=int(512 * hidden_scale), fp16=200, shared=60, loads=22, memory_boundedness=0.2)
    attn = _spec(
        f"{name}_flash_attention_fwd", grid=int(256 * hidden_scale), fp16=120,
        sfu=10, shared=48, loads=26, memory_boundedness=0.55, working_set_mb=48.0,
    )
    proj = _spec(f"{name}_out_proj_gemm", grid=int(384 * hidden_scale), fp16=170, shared=56, loads=20, memory_boundedness=0.22)
    mlp = _spec(f"{name}_mlp_gemm", grid=int(768 * hidden_scale), fp16=230, shared=64, loads=24, memory_boundedness=0.18)
    norm = _spec(f"{name}_rmsnorm", grid=128, fp32=22, loads=12, stores=8, memory_boundedness=0.8, working_set_mb=8.0)
    head = _spec(f"{name}_lm_head_gemm", grid=int(1024 * hidden_scale), fp16=240, shared=64, loads=26, memory_boundedness=0.25)

    # Decode-position axis, tiled over sentences (sentence lengths vary).
    lengths = rng.integers(int(tokens * 0.5), tokens + 1, size=sentences)
    positions = np.concatenate([np.arange(1, L + 1) for L in lengths]).astype(np.float64)
    steps = len(positions)
    rel = positions / tokens  # 0..1 KV-cache fill fraction

    def emit(spec: KernelSpec, per_layer_scale: np.ndarray, locality_mean: float, locality_jit: float, jitter: float, context_base: int) -> None:
        """Launch ``spec`` once per (decode step x layer), vectorized."""
        n = steps * layers
        scales = np.repeat(per_layer_scale, layers)
        scales = scales * (1.0 + jitter * rng.standard_normal(n))
        scales = np.maximum(scales, 0.01)
        # Context id: bucket of the KV-fill fraction, so launch sites with
        # similar cache state share an id.
        buckets = np.minimum((np.repeat(rel, layers) * 4).astype(np.int32), 3)
        localities = np.clip(locality_mean + locality_jit * rng.standard_normal(n), 0.0, 1.0)
        builder.launch_bulk(spec, context_base + buckets, scales, localities)

    emit(qkv, np.full(steps, 1.0), 0.72, 0.02, 0.015, 0)
    # Attention work grows with the KV length; its locality degrades as the
    # cache outgrows L2.
    emit(attn, 0.15 + 0.85 * rel, 0.55, 0.08, 0.05, 10)
    emit(proj, np.full(steps, 1.0), 0.72, 0.02, 0.015, 20)
    emit(mlp, np.full(steps, 1.0), 0.7, 0.02, 0.015, 30)
    emit(norm, np.full(steps, 1.0), 0.5, 0.06, 0.04, 40)
    # LM head runs once per decode step (not per layer) — model it as one
    # extra "layer" worth of launches scaled down accordingly.
    head_scales = np.ones(steps) * (1.0 + 0.01 * rng.standard_normal(steps))
    head_loc = np.clip(0.7 + 0.02 * rng.standard_normal(steps), 0.0, 1.0)
    builder.launch_bulk(head, np.full(steps, 50, dtype=np.int32), np.maximum(head_scales, 0.01), head_loc)
    return builder.build()


def _encoder_model(
    name: str,
    scale: float,
    seed: int,
    layers: int,
    inputs: int,
    hidden_scale: float,
    vision: bool,
) -> Workload:
    """An encoder (BERT/DeiT-style) batch-inference workload."""
    rng = np.random.default_rng(seed)
    inputs = max(2, int(round(inputs * scale)))
    builder = WorkloadBuilder(name=name, suite="huggingface")

    qkv = _spec(f"{name}_qkv_gemm", grid=int(512 * hidden_scale), fp16=190, shared=60, loads=22, memory_boundedness=0.2)
    attn = _spec(f"{name}_attention_fwd", grid=int(256 * hidden_scale), fp16=110, sfu=8, shared=44, loads=24, memory_boundedness=0.5, working_set_mb=32.0)
    mlp = _spec(f"{name}_mlp_gemm", grid=int(768 * hidden_scale), fp16=220, shared=64, loads=24, memory_boundedness=0.18)
    norm = _spec(f"{name}_layer_norm", grid=128, fp32=22, loads=12, stores=8, memory_boundedness=0.8, working_set_mb=8.0)

    # Sequence lengths (or image patch counts) vary by input, creating two
    # to three quantized shape peaks via padding buckets.
    bucket_scales = np.array([0.5, 1.0, 2.0]) if not vision else np.array([1.0])
    bucket_probs = np.array([0.3, 0.5, 0.2]) if not vision else np.array([1.0])
    buckets = rng.choice(len(bucket_scales), size=inputs, p=bucket_probs)
    per_input_scale = bucket_scales[buckets]

    def emit(spec: KernelSpec, base: np.ndarray, locality_mean: float, locality_jit: float, jitter: float, context_base: int) -> None:
        n = inputs * layers
        scales = np.repeat(base, layers)
        scales = np.maximum(scales * (1.0 + jitter * rng.standard_normal(n)), 0.01)
        ctx = context_base + np.repeat(buckets.astype(np.int32), layers)
        localities = np.clip(locality_mean + locality_jit * rng.standard_normal(n), 0.0, 1.0)
        builder.launch_bulk(spec, ctx, scales, localities)

    emit(qkv, per_input_scale, 0.72, 0.02, 0.012, 0)
    emit(attn, per_input_scale**2 / per_input_scale.mean(), 0.6, 0.06, 0.04, 10)
    emit(mlp, per_input_scale, 0.7, 0.02, 0.012, 20)
    emit(norm, per_input_scale, 0.5, 0.05, 0.04, 30)
    if vision:
        patchify = _spec(f"{name}_patch_embed_conv", grid=256, fp32=160, shared=40, loads=18, memory_boundedness=0.35)
        scales = np.maximum(1.0 + 0.01 * rng.standard_normal(inputs), 0.01)
        locs = np.clip(0.75 + 0.02 * rng.standard_normal(inputs), 0.0, 1.0)
        builder.launch_bulk(patchify, np.full(inputs, 40, dtype=np.int32), scales, locs)
    return builder.build()


@HUGGINGFACE.register("gpt2")
def _gpt2(scale: float, seed: int) -> Workload:
    return _decoder_llm("gpt2", scale, seed, layers=12, sentences=1200, tokens=48, hidden_scale=0.75)


@HUGGINGFACE.register("bloom")
def _bloom(scale: float, seed: int) -> Workload:
    return _decoder_llm("bloom", scale, seed, layers=24, sentences=400, tokens=40, hidden_scale=1.5)


@HUGGINGFACE.register("gemma")
def _gemma(scale: float, seed: int) -> Workload:
    return _decoder_llm("gemma", scale, seed, layers=18, sentences=600, tokens=44, hidden_scale=1.2)


@HUGGINGFACE.register("bert")
def _bert(scale: float, seed: int) -> Workload:
    return _encoder_model("bert", scale, seed, layers=12, inputs=24000, hidden_scale=1.0, vision=False)


@HUGGINGFACE.register("deit")
def _deit(scale: float, seed: int) -> Workload:
    return _encoder_model("deit", scale, seed, layers=12, inputs=20000, hidden_scale=0.75, vision=True)


@HUGGINGFACE.register("resnet50")
def _resnet50(scale: float, seed: int) -> Workload:
    """ResNet-50 classification of thousands of images."""
    rng = np.random.default_rng(seed)
    images = max(2, int(round(15000 * scale)))
    builder = WorkloadBuilder(name="resnet50", suite="huggingface")
    conv = _spec("resnet50_implicit_gemm_conv", grid=768, fp32=190, shared=60, loads=22, memory_boundedness=0.25)
    winograd = _spec("resnet50_winograd_3x3", grid=1024, fp32=210, shared=70, loads=20, memory_boundedness=0.22, basic_blocks=32)
    bn = _spec("resnet50_bn_fw_inf", grid=512, fp32=20, loads=12, stores=8, memory_boundedness=0.7, working_set_mb=24.0)
    pool = _spec("resnet50_max_pool", grid=512, fp32=6, int_alu=18, loads=14, memory_boundedness=0.92, working_set_mb=40.0)

    # Per image: 53 conv launches across 4 stage geometries, plus bn/pool.
    stage_scale = np.array([2.0, 1.0, 0.6, 0.35])
    stage_counts = np.array([10, 12, 18, 13])
    conv_scales = np.repeat(stage_scale, stage_counts)
    conv_ctx = np.repeat(np.arange(4, dtype=np.int32), stage_counts)

    def tile(per_image_scales: np.ndarray, per_image_ctx: np.ndarray, jitter: float):
        n = images * len(per_image_scales)
        scales = np.tile(per_image_scales, images)
        scales = np.maximum(scales * (1.0 + jitter * rng.standard_normal(n)), 0.01)
        ctx = np.tile(per_image_ctx, images)
        return scales, ctx, n

    scales, ctx, n = tile(conv_scales, conv_ctx, 0.02)
    locs = np.clip(0.72 + 0.03 * rng.standard_normal(n), 0.0, 1.0)
    builder.launch_bulk(conv, ctx, scales, locs)

    scales, ctx, n = tile(conv_scales[:16], conv_ctx[:16] + 10, 0.02)
    locs = np.clip(0.75 + 0.03 * rng.standard_normal(n), 0.0, 1.0)
    builder.launch_bulk(winograd, ctx, scales, locs)

    bn_scales = np.array([1.6, 1.0, 0.5])
    bn_ctx = np.arange(3, dtype=np.int32) + 20
    scales, ctx, n = tile(np.repeat(bn_scales, 17), np.repeat(bn_ctx, 17), 0.025)
    locs = np.clip(0.6 + 0.05 * rng.standard_normal(n), 0.0, 1.0)
    builder.launch_bulk(bn, ctx, scales, locs)

    scales, ctx, n = tile(np.ones(2), np.full(2, 30, dtype=np.int32), 0.1)
    locs = np.clip(0.3 + 0.1 * rng.standard_normal(n), 0.0, 1.0)
    builder.launch_bulk(pool, ctx, scales, locs)
    return builder.build()


def workload_names() -> List[str]:
    """The 6 HuggingFace-style workload names."""
    return HUGGINGFACE.names()


def generate(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Generate one HuggingFace-style workload by name."""
    return HUGGINGFACE.generate(name, scale=scale, seed=seed)
