"""CASIO-style ML workloads (11 workloads, Table 2 row 2).

Each workload models a deep-learning application compiled from a framework
compute graph: tens of thousands of launches drawn from a small pool of
kernel types (GEMMs, convolutions, normalizations, poolings, elementwise
ops, embedding gathers).  The mixtures encode the runtime heterogeneity of
Figure 1:

* GEMM kernels (``sgemm_128x64_nn`` etc.) — several *narrow* peaks, one
  per usage site (QKV projection vs FFN vs output head);
* ``bn_fw_inf`` — three clearly separated peaks (three distinct feature-map
  geometries in the network);
* ``max_pool`` and embedding gathers — *wide* distributions from their
  memory-bound nature;
* elementwise ops — stable narrow behaviour.

``dlrm`` is dominated by random-access embedding lookups, which makes it
the most memory-intensive workload — the property Figure 13 relies on.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..contexts import ContextMixture, ContextMode
from ..kernel import InstructionMix, KernelSpec, MemoryPattern
from ..workload import Workload
from .base import KernelPhase, WorkloadRegistry, assemble, scaled_count

__all__ = ["CASIO", "generate", "workload_names"]

CASIO = WorkloadRegistry("casio")


def _spec(
    name: str,
    grid: int,
    block: int = 256,
    fp32: int = 0,
    fp16: int = 0,
    int_alu: int = 12,
    sfu: int = 0,
    loads: int = 16,
    stores: int = 6,
    shared: int = 0,
    branch: int = 4,
    stride: int = 4,
    random_fraction: float = 0.0,
    working_set_mb: float = 16.0,
    memory_boundedness: float = 0.5,
    basic_blocks: int = 20,
) -> KernelSpec:
    """Compact ML kernel-spec factory."""
    return KernelSpec(
        name=name,
        grid_dim=(grid, 1, 1),
        block_dim=(block, 1, 1),
        mix=InstructionMix(
            fp32=fp32,
            fp16=fp16,
            int_alu=int_alu,
            sfu=sfu,
            load_global=loads,
            store_global=stores,
            load_shared=shared,
            store_shared=shared // 2,
            branch=branch,
        ),
        memory=MemoryPattern(
            stride_bytes=stride,
            random_fraction=random_fraction,
            working_set_bytes=int(working_set_mb * (1 << 20)),
        ),
        memory_boundedness=memory_boundedness,
        num_basic_blocks=basic_blocks,
    )


def _gemm(name: str, fp16: bool = False, grid: int = 512) -> KernelSpec:
    """Tiled GEMM: compute-bound, heavy shared-memory traffic."""
    return _spec(
        name,
        grid=grid,
        fp32=0 if fp16 else 180,
        fp16=220 if fp16 else 0,
        shared=60,
        loads=24,
        stores=6,
        memory_boundedness=0.2,
        working_set_mb=24.0,
        basic_blocks=28,
    )


def _peaks(peak_params: Sequence, work_jitter: float = 0.015) -> ContextMixture:
    """Mixture of narrow peaks.

    Each entry is ``(weight, work_scale, locality)`` or
    ``(weight, work_scale, locality, efficiency)``; efficiency defaults
    to 1.0.
    """
    modes = []
    for i, params in enumerate(peak_params):
        w, scale, loc = params[:3]
        eff = params[3] if len(params) > 3 else 1.0
        modes.append(
            ContextMode(
                context_id=i,
                weight=w,
                work_scale=scale,
                work_jitter=work_jitter,
                locality=loc,
                locality_jitter=0.02,
                efficiency=eff,
            )
        )
    return ContextMixture(modes)


# -- reusable kernel recipes -------------------------------------------------

def _transformer_phases(
    prefix: str, layers: int, calls_per_kernel: int, fp16: bool, train: bool
) -> List[KernelPhase]:
    """Kernel phases of a transformer encoder/decoder stack.

    GEMMs appear in three usage sites (QKV/attention-out/FFN) with distinct
    effective shapes — three narrow execution-time peaks per GEMM kernel.
    """
    n = calls_per_kernel
    gemm_128x64 = _gemm(f"{prefix}_sgemm_128x64_nn", fp16=fp16)
    gemm_128x128 = _gemm(f"{prefix}_sgemm_128x128_tn", fp16=fp16, grid=1024)
    softmax = _spec(
        f"{prefix}_softmax_warp_fwd", grid=256, fp32=30, sfu=10, loads=22, stores=10,
        memory_boundedness=0.65, working_set_mb=4.0,
    )
    layernorm = _spec(
        f"{prefix}_layer_norm_fwd", grid=256, fp32=26, loads=26, stores=14,
        memory_boundedness=0.8, working_set_mb=5.0,
    )
    gelu = _spec(
        f"{prefix}_gelu_kernel", grid=512, fp32=18, sfu=6, loads=18, stores=16,
        memory_boundedness=0.85, working_set_mb=16.0,
    )
    phases = [
        KernelPhase(
            # Three usage sites, identical launch shape and instruction
            # count: two differ only in tensor-core utilization (layout /
            # alignment of the operand tensors), the third carries less
            # effective work.
            gemm_128x64,
            _peaks([(0.5, 1.0, 0.75, 1.0), (0.3, 1.0, 0.7, 0.45), (0.2, 0.55, 0.8, 1.0)]),
            3 * n,
        ),
        KernelPhase(
            gemm_128x128,
            _peaks([(0.6, 1.0, 0.72, 1.0), (0.4, 1.0, 0.68, 0.5)]),
            2 * n,
        ),
        KernelPhase(
            # Same shape at every launch site — but the operand tensors
            # live hot in L2 for some sites and cold for others.  Identical
            # instruction counts, distinct execution-time peaks.
            softmax,
            _peaks([(0.6, 1.0, 0.85), (0.4, 1.0, 0.3)], work_jitter=0.04),
            n,
        ),
        KernelPhase(
            layernorm,
            _peaks([(0.55, 1.0, 0.9), (0.45, 1.0, 0.35)], work_jitter=0.03),
            2 * n,
        ),
        KernelPhase(
            gelu,
            ContextMixture.single(work_jitter=0.05, locality=0.45, locality_jitter=0.08),
            n,
        ),
    ]
    if train:
        gemm_bwd = _gemm(f"{prefix}_sgemm_128x64_nt_bwd", fp16=fp16, grid=1024)
        reduce_grad = _spec(
            f"{prefix}_reduce_grad", grid=512, fp32=14, loads=14, stores=6,
            memory_boundedness=0.85, working_set_mb=32.0,
        )
        adam = _spec(
            f"{prefix}_adam_update", grid=512, fp32=22, sfu=4, loads=12, stores=12,
            memory_boundedness=0.9, working_set_mb=48.0,
        )
        phases += [
            KernelPhase(
                gemm_bwd,
                _peaks([(0.5, 1.0, 0.7, 1.0), (0.3, 1.0, 0.65, 0.5), (0.2, 0.6, 0.75, 1.0)]),
                3 * n,
            ),
            KernelPhase(
                reduce_grad,
                ContextMixture.single(work_jitter=0.07, locality=0.4, locality_jitter=0.1),
                2 * n,
            ),
            KernelPhase(
                adam,
                ContextMixture.single(work_jitter=0.05, locality=0.35, locality_jitter=0.08),
                n,
            ),
        ]
    return phases


def _cnn_phases(prefix: str, calls_per_kernel: int, train: bool) -> List[KernelPhase]:
    """Kernel phases of a convolutional network.

    ``bn_fw_inf`` gets three distinct geometry peaks; ``max_pool`` is wide
    and memory-bound — matching the Figure 1 histograms by name.
    """
    n = calls_per_kernel
    winograd = _spec(
        f"{prefix}_winograd_fwd_3x3", grid=1024, fp32=200, shared=70, loads=20,
        stores=8, memory_boundedness=0.25, working_set_mb=20.0, basic_blocks=32,
    )
    implicit_gemm = _gemm(f"{prefix}_implicit_gemm_conv", grid=768)
    bn = _spec(
        f"{prefix}_bn_fw_inf", grid=512, fp32=20, loads=24, stores=14,
        memory_boundedness=0.8, working_set_mb=5.0,
    )
    pool = _spec(
        f"{prefix}_max_pool", grid=512, fp32=6, int_alu=18, loads=14, stores=6,
        memory_boundedness=0.92, working_set_mb=40.0, branch=8,
    )
    relu = _spec(
        f"{prefix}_relu_kernel", grid=512, fp32=6, loads=8, stores=8,
        memory_boundedness=0.9, working_set_mb=24.0,
    )
    phases = [
        KernelPhase(
            winograd,
            _peaks([(0.45, 1.0, 0.75, 1.0), (0.35, 1.0, 0.7, 0.42), (0.2, 0.5, 0.78, 1.0)]),
            2 * n,
        ),
        KernelPhase(
            implicit_gemm,
            _peaks([(0.6, 1.0, 0.72, 1.0), (0.4, 1.0, 0.68, 0.55)]),
            2 * n,
        ),
        KernelPhase(
            bn,
            # Three clearly separated peaks — the bn_fw_inf of Figure 1.
            # The feature maps are the same size at every site (identical
            # instruction counts); what differs is their L2 residency.
            _peaks([(0.45, 1.0, 0.9), (0.35, 1.0, 0.5), (0.2, 1.0, 0.1)], work_jitter=0.02),
            2 * n,
        ),
        KernelPhase(
            pool,
            # One broad mode: heavy memory-bound jitter.
            ContextMixture.single(work_jitter=0.12, locality=0.3, locality_jitter=0.12),
            n,
        ),
        KernelPhase(
            relu,
            ContextMixture.single(work_jitter=0.04, locality=0.5, locality_jitter=0.05),
            2 * n,
        ),
    ]
    if train:
        bn_bwd = _spec(
            f"{prefix}_bn_bw", grid=512, fp32=26, loads=28, stores=16,
            memory_boundedness=0.8, working_set_mb=6.0,
        )
        wgrad = _gemm(f"{prefix}_wgrad_gemm", grid=1024)
        phases += [
            KernelPhase(
                bn_bwd,
                _peaks([(0.5, 1.0, 0.85), (0.3, 1.0, 0.45), (0.2, 1.0, 0.15)], work_jitter=0.03),
                2 * n,
            ),
            KernelPhase(
                wgrad,
                _peaks([(0.6, 1.0, 0.7, 1.0), (0.4, 1.0, 0.62, 0.48)]),
                2 * n,
            ),
        ]
    return phases


def _register_transformer(name: str, calls_per_kernel: int, fp16: bool, train: bool):
    @CASIO.register(name)
    def _gen(scale: float, seed: int, _name=name, _n=calls_per_kernel, _fp16=fp16, _train=train) -> Workload:
        rng = np.random.default_rng(seed)
        n = scaled_count(_n, scale, minimum=8)
        return assemble(_name, "casio", _transformer_phases(_name, 12, n, _fp16, _train), rng)


def _register_cnn(name: str, calls_per_kernel: int, train: bool):
    @CASIO.register(name)
    def _gen(scale: float, seed: int, _name=name, _n=calls_per_kernel, _train=train) -> Workload:
        rng = np.random.default_rng(seed)
        n = scaled_count(_n, scale, minimum=8)
        return assemble(_name, "casio", _cnn_phases(_name, n, _train), rng)


_register_transformer("bert_infer", 6000, fp16=True, train=False)
_register_transformer("bert_train", 4500, fp16=True, train=True)
_register_transformer("gpt2_infer", 7000, fp16=True, train=False)
_register_transformer("rnnt_infer", 4000, fp16=False, train=False)
_register_cnn("resnet50_infer", 7000, train=False)
_register_cnn("resnet50_train", 5000, train=True)
_register_cnn("ssdrn34_infer", 6000, train=False)
_register_cnn("ssdrn34_train", 4500, train=True)
_register_cnn("unet_infer", 6500, train=False)
_register_cnn("unet_train", 5000, train=True)


@CASIO.register("dlrm")
def _dlrm(scale: float, seed: int) -> Workload:
    """DLRM: embedding-gather dominated, random access, high memory pressure."""
    rng = np.random.default_rng(seed)
    n = scaled_count(9000, scale, minimum=16)
    embedding = _spec(
        "dlrm_embedding_gather", grid=256, int_alu=20, loads=26, stores=8,
        random_fraction=0.9, memory_boundedness=0.97, working_set_mb=512.0,
        branch=6, basic_blocks=10,
    )
    interact = _spec(
        "dlrm_interact_features", grid=256, fp32=60, shared=30, loads=14, stores=6,
        memory_boundedness=0.4, working_set_mb=8.0,
    )
    mlp_top = _gemm("dlrm_mlp_top_gemm", grid=384)
    mlp_bot = _gemm("dlrm_mlp_bot_gemm", grid=256)
    phases = [
        KernelPhase(
            embedding,
            # Very wide: lookup locality depends on the sparse input batch.
            ContextMixture(
                [
                    ContextMode(context_id=0, weight=0.7, work_scale=1.0, work_jitter=0.25, locality=0.15, locality_jitter=0.12),
                    ContextMode(context_id=1, weight=0.3, work_scale=2.4, work_jitter=0.25, locality=0.1, locality_jitter=0.08),
                ]
            ),
            3 * n,
        ),
        KernelPhase(interact, ContextMixture.single(work_jitter=0.03, locality=0.7), n),
        KernelPhase(mlp_top, _peaks([(0.6, 1.0, 0.72, 1.0), (0.4, 1.0, 0.68, 0.55)]), n),
        KernelPhase(mlp_bot, _peaks([(1.0, 1.0, 0.74)]), n),
    ]
    return assemble("dlrm", "casio", phases, rng)


def workload_names() -> List[str]:
    """The 11 CASIO-style workload names."""
    return CASIO.names()


def generate(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Generate one CASIO-style workload by name."""
    return CASIO.generate(name, scale=scale, seed=seed)
