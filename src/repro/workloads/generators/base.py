"""Shared machinery for benchmark-suite generators.

Each suite module (:mod:`rodinia`, :mod:`casio`, :mod:`huggingface`)
describes its workloads as lists of :class:`KernelPhase` entries — one
kernel spec, a context mixture, and an invocation count — and the helpers
here turn those into a :class:`~repro.workloads.workload.Workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..contexts import ContextMixture
from ..kernel import KernelSpec
from ..workload import Workload, WorkloadBuilder

__all__ = ["KernelPhase", "assemble", "WorkloadRegistry"]


@dataclass(frozen=True)
class KernelPhase:
    """A batch of launches of one kernel drawn from one context mixture.

    ``schedule`` optionally fixes the per-launch mode sequence (indices
    into the mixture's modes) for workloads with deterministic phase
    structure such as Rodinia's ``gaussian``; when omitted, launches are
    drawn i.i.d. from the mixture weights.
    """

    spec: KernelSpec
    mixture: ContextMixture
    count: int
    schedule: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.schedule is not None and len(self.schedule) != self.count:
            raise ValueError("schedule length must equal count")


def assemble(
    name: str,
    suite: str,
    phases: Sequence[KernelPhase],
    rng: np.random.Generator,
) -> Workload:
    """Build a workload from phases, preserving phase order."""
    builder = WorkloadBuilder(name=name, suite=suite)
    for phase in phases:
        if phase.schedule is not None:
            ctx, scales, locs, effs = phase.mixture.schedule(phase.schedule, rng)
        else:
            ctx, scales, locs, effs = phase.mixture.draw(phase.count, rng)
        builder.launch_bulk(phase.spec, ctx, scales, locs, effs)
    return builder.build()


class WorkloadRegistry:
    """Name → generator registry for one benchmark suite.

    Generators are callables ``(scale: float, seed: int) -> Workload``.
    ``scale`` multiplies invocation counts so tests can run miniature
    versions of every workload.
    """

    def __init__(self, suite: str):
        self.suite = suite
        self._generators: Dict[str, Callable[[float, int], Workload]] = {}

    def register(self, name: str):
        """Decorator registering a workload generator under ``name``."""

        def wrap(fn: Callable[[float, int], Workload]):
            if name in self._generators:
                raise ValueError(f"duplicate workload {name!r} in suite {self.suite!r}")
            self._generators[name] = fn
            return fn

        return wrap

    def names(self) -> List[str]:
        return sorted(self._generators)

    def generate(self, name: str, scale: float = 1.0, seed: int = 0) -> Workload:
        try:
            fn = self._generators[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r} in suite {self.suite!r}; "
                f"available: {self.names()}"
            ) from None
        if scale <= 0:
            raise ValueError("scale must be positive")
        return fn(scale, seed)

    def generate_all(self, scale: float = 1.0, seed: int = 0) -> List[Workload]:
        """Generate every workload in the suite, seeds offset per name."""
        return [
            self.generate(name, scale=scale, seed=seed + offset)
            for offset, name in enumerate(self.names())
        ]


def scaled_count(base: int, scale: float, minimum: int = 4) -> int:
    """Scale an invocation count, keeping a usable minimum."""
    return max(minimum, int(round(base * scale)))
