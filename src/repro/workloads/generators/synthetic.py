"""Hand-parameterized synthetic workloads for tests and examples.

These are the minimal building blocks the docs use: a single-kernel
workload with a chosen number of execution-time peaks, a flat homogeneous
workload, and a mixed workload combining several kernel personalities.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..contexts import ContextMixture, ContextMode
from ..kernel import InstructionMix, KernelSpec, MemoryPattern
from ..workload import Workload
from .base import KernelPhase, assemble

__all__ = [
    "make_kernel_spec",
    "multimodal_workload",
    "flat_workload",
    "mixed_workload",
]


def make_kernel_spec(
    name: str = "synthetic_kernel",
    memory_boundedness: float = 0.5,
    grid: int = 256,
    working_set_mb: float = 16.0,
    random_fraction: float = 0.0,
) -> KernelSpec:
    """A generic kernel spec with a balanced instruction mix."""
    return KernelSpec(
        name=name,
        grid_dim=(grid, 1, 1),
        block_dim=(256, 1, 1),
        mix=InstructionMix(
            fp32=60, int_alu=16, load_global=16, store_global=8,
            load_shared=8, store_shared=4, branch=6,
        ),
        memory=MemoryPattern(
            stride_bytes=4,
            random_fraction=random_fraction,
            working_set_bytes=int(working_set_mb * (1 << 20)),
        ),
        memory_boundedness=memory_boundedness,
    )


def multimodal_workload(
    n: int = 2000,
    peaks: Sequence[Tuple[float, float]] = ((1.0, 0.5), (2.5, 0.5), (5.0, 0.5)),
    work_jitter: float = 0.02,
    seed: int = 0,
    name: str = "multimodal",
    memory_boundedness: float = 0.5,
) -> Workload:
    """One kernel whose execution times form the given peaks.

    ``peaks`` is a sequence of ``(work_scale, locality)`` pairs, equally
    weighted.  The resulting histogram has ``len(peaks)`` modes — the
    textbook ROOT test case.
    """
    rng = np.random.default_rng(seed)
    spec = make_kernel_spec(f"{name}_kernel", memory_boundedness=memory_boundedness)
    mixture = ContextMixture(
        [
            ContextMode(
                context_id=i, work_scale=s, work_jitter=work_jitter,
                locality=loc, locality_jitter=0.02,
            )
            for i, (s, loc) in enumerate(peaks)
        ]
    )
    return assemble(name, "synthetic", [KernelPhase(spec, mixture, n)], rng)


def flat_workload(
    n: int = 1000,
    work_jitter: float = 0.05,
    seed: int = 0,
    name: str = "flat",
    memory_boundedness: float = 0.5,
    locality: float = 0.6,
) -> Workload:
    """One kernel, one context — a unimodal execution-time distribution."""
    rng = np.random.default_rng(seed)
    spec = make_kernel_spec(f"{name}_kernel", memory_boundedness=memory_boundedness)
    mixture = ContextMixture.single(
        work_jitter=work_jitter, locality=locality, locality_jitter=0.02
    )
    return assemble(name, "synthetic", [KernelPhase(spec, mixture, n)], rng)


def mixed_workload(
    n_per_kernel: int = 1000,
    seed: int = 0,
    name: str = "mixed",
) -> Workload:
    """Three kernel personalities in one workload.

    A stable compute-bound GEMM-like kernel, a three-peak batch-norm-like
    kernel, and a wide memory-bound pooling-like kernel — a miniature of
    the Figure 1 menagerie, useful for end-to-end pipeline tests.
    """
    rng = np.random.default_rng(seed)
    gemm = make_kernel_spec(f"{name}_gemm", memory_boundedness=0.15)
    bn = make_kernel_spec(f"{name}_bn", memory_boundedness=0.7)
    pool = make_kernel_spec(
        f"{name}_pool", memory_boundedness=0.95, working_set_mb=64.0, random_fraction=0.4
    )
    phases: List[KernelPhase] = [
        KernelPhase(
            gemm,
            ContextMixture.single(work_jitter=0.01, locality=0.8),
            n_per_kernel,
        ),
        KernelPhase(
            bn,
            ContextMixture(
                [
                    ContextMode(context_id=0, weight=0.5, work_scale=0.5, work_jitter=0.02, locality=0.7),
                    ContextMode(context_id=1, weight=0.3, work_scale=1.2, work_jitter=0.02, locality=0.6),
                    ContextMode(context_id=2, weight=0.2, work_scale=3.0, work_jitter=0.02, locality=0.55),
                ]
            ),
            n_per_kernel,
        ),
        KernelPhase(
            pool,
            ContextMixture.single(work_jitter=0.15, locality=0.25, locality_jitter=0.12),
            n_per_kernel,
        ),
    ]
    return assemble(name, "synthetic", phases, rng)
