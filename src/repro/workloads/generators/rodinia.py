"""Rodinia-style GPGPU workloads (13 workloads, Table 2 row 1).

These synthetic counterparts reproduce the *structural* properties the
paper's Section 5.1 calls out for the Rodinia 3.1 suite:

* ``gaussian`` — one kernel pair invoked thousands of times with steadily
  shrinking work, approaching zero in late iterations;
* ``heartwall`` — the first invocation is tiny, subsequent invocations
  execute ~1500× more instructions (first-chronological samplers
  underestimate total time by ~99.9%);
* ``pf_float`` / ``pf_naive`` — some kernels are ~100× longer than others;
* ``bfs`` — per-level frontier sizes make execution times vary widely;
* the remaining workloads are regular GPGPU/HPC kernels with modest call
  counts, included (as in the paper) as a reference for irregular and
  diverse behaviour.

Invocation counts average ≈1400 per workload, matching Table 2.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..contexts import ContextMixture, ContextMode
from ..kernel import InstructionMix, KernelSpec, MemoryPattern
from ..workload import Workload
from .base import KernelPhase, WorkloadRegistry, assemble, scaled_count

__all__ = ["RODINIA", "generate", "workload_names"]

RODINIA = WorkloadRegistry("rodinia")


def _spec(
    name: str,
    grid: int,
    block: int = 256,
    fp32: int = 40,
    int_alu: int = 20,
    loads: int = 12,
    stores: int = 6,
    shared: int = 0,
    branch: int = 6,
    sfu: int = 0,
    stride: int = 4,
    random_fraction: float = 0.0,
    working_set_mb: float = 8.0,
    memory_boundedness: float = 0.5,
    basic_blocks: int = 12,
) -> KernelSpec:
    """Compact Rodinia kernel-spec factory."""
    return KernelSpec(
        name=name,
        grid_dim=(grid, 1, 1),
        block_dim=(block, 1, 1),
        mix=InstructionMix(
            fp32=fp32,
            int_alu=int_alu,
            sfu=sfu,
            load_global=loads,
            store_global=stores,
            load_shared=shared,
            store_shared=shared // 2,
            branch=branch,
        ),
        memory=MemoryPattern(
            stride_bytes=stride,
            random_fraction=random_fraction,
            working_set_bytes=int(working_set_mb * (1 << 20)),
        ),
        memory_boundedness=memory_boundedness,
        num_basic_blocks=basic_blocks,
    )


def _staircase_modes(
    num_steps: int, first_scale: float, last_scale: float, locality: float, jitter: float
) -> ContextMixture:
    """Mixture whose modes step geometrically from first to last scale."""
    scales = np.geomspace(first_scale, max(last_scale, 1e-3), num_steps)
    return ContextMixture(
        [
            ContextMode(
                context_id=i,
                work_scale=float(s),
                work_jitter=jitter,
                locality=locality,
                locality_jitter=0.03,
            )
            for i, s in enumerate(scales)
        ]
    )


@RODINIA.register("gaussian")
def _gaussian(scale: float, seed: int) -> Workload:
    """Gaussian elimination: per-row kernel pair with shrinking work."""
    rng = np.random.default_rng(seed)
    n = scaled_count(2048, scale, minimum=32)
    steps = 32
    fan1 = _spec("Fan1", grid=8, fp32=20, loads=8, stores=4, memory_boundedness=0.35)
    fan2 = _spec("Fan2", grid=256, fp32=60, loads=16, stores=8, memory_boundedness=0.45)
    mixture = _staircase_modes(steps, 1.0, 0.005, locality=0.7, jitter=0.02)
    # Row i of the elimination touches an (N - i)-sized trailing submatrix:
    # map launches onto the staircase in order.
    schedule = np.minimum(
        (np.arange(n // 2) * steps) // max(n // 2, 1), steps - 1
    )
    phases = [
        KernelPhase(fan1, mixture, n // 2, schedule=schedule),
        KernelPhase(fan2, mixture, n // 2, schedule=schedule),
    ]
    return assemble("gaussian", "rodinia", phases, rng)


@RODINIA.register("heartwall")
def _heartwall(scale: float, seed: int) -> Workload:
    """Heart-wall tracking: tiny first frame, ~1500× heavier later frames."""
    rng = np.random.default_rng(seed)
    n = scaled_count(104, scale, minimum=8)
    spec = _spec(
        "heartwall_kernel", grid=51, block=512, fp32=80, loads=30, stores=10,
        shared=20, memory_boundedness=0.55, working_set_mb=24.0,
    )
    mixture = ContextMixture(
        [
            ContextMode(context_id=0, work_scale=0.001, locality=0.9),
            ContextMode(
                context_id=1, work_scale=1.5, work_jitter=0.04, locality=0.6,
                locality_jitter=0.05,
            ),
        ]
    )
    schedule = np.array([0] + [1] * (n - 1))
    return assemble(
        "heartwall", "rodinia", [KernelPhase(spec, mixture, n, schedule=schedule)], rng
    )


@RODINIA.register("bfs")
def _bfs(scale: float, seed: int) -> Workload:
    """Breadth-first search: frontier size swells then shrinks per level."""
    rng = np.random.default_rng(seed)
    n = scaled_count(174, scale, minimum=12)
    kernel1 = _spec(
        "bfs_kernel1", grid=128, fp32=4, int_alu=30, loads=18, stores=8,
        random_fraction=0.6, memory_boundedness=0.9, working_set_mb=64.0, branch=14,
    )
    kernel2 = _spec(
        "bfs_kernel2", grid=128, fp32=2, int_alu=16, loads=10, stores=6,
        random_fraction=0.5, memory_boundedness=0.85, working_set_mb=64.0, branch=10,
    )
    steps = 12
    # Frontier grows then decays: a log-normal-ish bell over levels.
    level = np.arange(steps)
    bell = np.exp(-((level - steps * 0.4) ** 2) / (2 * (steps * 0.22) ** 2))
    scales = 0.02 + bell * 1.4
    modes = ContextMixture(
        [
            ContextMode(
                context_id=i, work_scale=float(s), work_jitter=0.10,
                locality=0.35, locality_jitter=0.08,
            )
            for i, s in enumerate(scales)
        ]
    )
    per_kernel = n // 2
    schedule = np.minimum((np.arange(per_kernel) * steps) // max(per_kernel, 1), steps - 1)
    phases = [
        KernelPhase(kernel1, modes, per_kernel, schedule=schedule),
        KernelPhase(kernel2, modes, per_kernel, schedule=schedule),
    ]
    return assemble("bfs", "rodinia", phases, rng)


@RODINIA.register("pf_float")
def _pf_float(scale: float, seed: int) -> Workload:
    """Particle filter (float): one kernel ~100× longer than the others."""
    rng = np.random.default_rng(seed)
    base = scaled_count(4000, scale, minimum=40)
    likelihood = _spec(
        "likelihood_kernel", grid=512, fp32=120, sfu=12, loads=20, stores=8,
        memory_boundedness=0.4, working_set_mb=16.0,
    )
    find_index = _spec(
        "find_index_kernel", grid=64, int_alu=24, fp32=4, loads=12, stores=4,
        random_fraction=0.3, memory_boundedness=0.8, working_set_mb=16.0,
    )
    normalize = _spec(
        "normalize_weights_kernel", grid=64, fp32=10, loads=6, stores=4,
        memory_boundedness=0.6, working_set_mb=4.0,
    )
    phases = [
        KernelPhase(likelihood, ContextMixture.single(work_scale=4.0, work_jitter=0.05, locality=0.6), base // 4),
        KernelPhase(find_index, ContextMixture.single(work_scale=0.04, work_jitter=0.12, locality=0.4, locality_jitter=0.08), base // 2),
        KernelPhase(normalize, ContextMixture.single(work_scale=0.04, work_jitter=0.06, locality=0.7), base // 4),
    ]
    return assemble("pf_float", "rodinia", phases, rng)


@RODINIA.register("pf_naive")
def _pf_naive(scale: float, seed: int) -> Workload:
    """Particle filter (naive): single kernel, bimodal long/short launches."""
    rng = np.random.default_rng(seed)
    n = scaled_count(4000, scale, minimum=32)
    spec = _spec(
        "particle_kernel", grid=256, fp32=60, sfu=8, loads=16, stores=8,
        memory_boundedness=0.5, working_set_mb=12.0,
    )
    mixture = ContextMixture(
        [
            ContextMode(context_id=0, weight=0.85, work_scale=0.05, work_jitter=0.08, locality=0.6),
            ContextMode(context_id=1, weight=0.15, work_scale=5.0, work_jitter=0.05, locality=0.55, locality_jitter=0.05),
        ]
    )
    return assemble("pf_naive", "rodinia", [KernelPhase(spec, mixture, n)], rng)


@RODINIA.register("backprop")
def _backprop(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(48, scale, minimum=8)
    forward = _spec(
        "bpnn_layerforward", grid=1024, block=256, fp32=50, shared=16, loads=12,
        stores=4, memory_boundedness=0.45, working_set_mb=18.0,
    )
    adjust = _spec(
        "bpnn_adjust_weights", grid=1024, block=256, fp32=30, loads=16, stores=12,
        memory_boundedness=0.7, working_set_mb=18.0,
    )
    phases = [
        KernelPhase(forward, ContextMixture.single(work_jitter=0.03, locality=0.65), n // 2),
        KernelPhase(adjust, ContextMixture.single(work_jitter=0.05, locality=0.5, locality_jitter=0.05), n // 2),
    ]
    return assemble("backprop", "rodinia", phases, rng)


@RODINIA.register("btree")
def _btree(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(40, scale, minimum=6)
    find_k = _spec(
        "findK", grid=512, int_alu=40, fp32=2, loads=20, stores=4,
        random_fraction=0.8, memory_boundedness=0.9, working_set_mb=96.0, branch=16,
    )
    find_range = _spec(
        "findRangeK", grid=512, int_alu=44, fp32=2, loads=24, stores=6,
        random_fraction=0.8, memory_boundedness=0.9, working_set_mb=96.0, branch=18,
    )
    mix = ContextMixture.single(work_jitter=0.08, locality=0.25, locality_jitter=0.1)
    phases = [KernelPhase(find_k, mix, n // 2), KernelPhase(find_range, mix, n // 2)]
    return assemble("btree", "rodinia", phases, rng)


@RODINIA.register("cfd")
def _cfd(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(3000, scale, minimum=30)
    flux = _spec(
        "cuda_compute_flux", grid=759, block=192, fp32=160, sfu=8, loads=36,
        stores=12, memory_boundedness=0.6, working_set_mb=40.0,
    )
    step = _spec(
        "cuda_time_step", grid=759, block=192, fp32=24, loads=16, stores=16,
        memory_boundedness=0.8, working_set_mb=40.0,
    )
    flux_mix = ContextMixture.single(work_jitter=0.03, locality=0.55, locality_jitter=0.04)
    step_mix = ContextMixture.single(work_jitter=0.05, locality=0.45, locality_jitter=0.06)
    phases = [
        KernelPhase(flux, flux_mix, n // 2),
        KernelPhase(step, step_mix, n // 2),
    ]
    return assemble("cfd", "rodinia", phases, rng)


@RODINIA.register("hotspot")
def _hotspot(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(1440, scale, minimum=16)
    spec = _spec(
        "calculate_temp", grid=1849, block=256, fp32=70, shared=24, loads=10,
        stores=5, memory_boundedness=0.35, working_set_mb=16.0,
    )
    mix = ContextMixture.single(work_jitter=0.02, locality=0.75, locality_jitter=0.03)
    return assemble("hotspot", "rodinia", [KernelPhase(spec, mix, n)], rng)


@RODINIA.register("kmeans")
def _kmeans(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(36, scale, minimum=6)
    assign = _spec(
        "kmeansPoint", grid=1936, block=256, fp32=90, loads=24, stores=4,
        memory_boundedness=0.65, working_set_mb=48.0,
    )
    swap = _spec(
        "invert_mapping", grid=1936, block=256, int_alu=10, loads=8, stores=8,
        memory_boundedness=0.9, working_set_mb=48.0,
    )
    phases = [
        KernelPhase(assign, ContextMixture.single(work_jitter=0.04, locality=0.5, locality_jitter=0.05), n * 2 // 3),
        KernelPhase(swap, ContextMixture.single(work_jitter=0.05, locality=0.45), n - n * 2 // 3),
    ]
    return assemble("kmeans", "rodinia", phases, rng)


@RODINIA.register("lavamd")
def _lavamd(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(12, scale, minimum=4)
    spec = _spec(
        "kernel_gpu_cuda", grid=1000, block=128, fp32=220, sfu=20, shared=40,
        loads=30, stores=10, memory_boundedness=0.25, working_set_mb=8.0,
    )
    mix = ContextMixture.single(work_jitter=0.02, locality=0.8)
    return assemble("lavamd", "rodinia", [KernelPhase(spec, mix, n)], rng)


@RODINIA.register("lud")
def _lud(scale: float, seed: int) -> Workload:
    """LU decomposition: per-step kernels over a shrinking trailing matrix."""
    rng = np.random.default_rng(seed)
    n = scaled_count(772, scale, minimum=24)
    diagonal = _spec("lud_diagonal", grid=1, block=256, fp32=60, shared=32, loads=8, stores=8, memory_boundedness=0.3)
    perimeter = _spec("lud_perimeter", grid=32, block=256, fp32=70, shared=32, loads=12, stores=10, memory_boundedness=0.4)
    internal = _spec("lud_internal", grid=1024, block=256, fp32=80, shared=24, loads=14, stores=8, memory_boundedness=0.45, working_set_mb=32.0)
    steps = 16
    mixture = _staircase_modes(steps, 1.0, 0.01, locality=0.65, jitter=0.03)
    per_kernel = n // 3
    schedule = np.minimum((np.arange(per_kernel) * steps) // max(per_kernel, 1), steps - 1)
    phases = [
        KernelPhase(diagonal, mixture, per_kernel, schedule=schedule),
        KernelPhase(perimeter, mixture, per_kernel, schedule=schedule),
        KernelPhase(internal, mixture, per_kernel, schedule=schedule),
    ]
    return assemble("lud", "rodinia", phases, rng)


@RODINIA.register("nw")
def _nw(scale: float, seed: int) -> Workload:
    """Needleman-Wunsch: anti-diagonal sweep — work ramps up then down."""
    rng = np.random.default_rng(seed)
    n = scaled_count(511, scale, minimum=16)
    spec = _spec(
        "needle_cuda_shared", grid=128, block=32, fp32=8, int_alu=40, shared=30,
        loads=12, stores=8, memory_boundedness=0.5, working_set_mb=24.0, branch=12,
    )
    steps = 16
    ramp = np.concatenate([np.linspace(0.1, 1.0, steps // 2), np.linspace(1.0, 0.1, steps - steps // 2)])
    mixture = ContextMixture(
        [
            ContextMode(context_id=i, work_scale=float(s), work_jitter=0.04, locality=0.6)
            for i, s in enumerate(ramp)
        ]
    )
    schedule = np.minimum((np.arange(n) * steps) // max(n, 1), steps - 1)
    return assemble("nw", "rodinia", [KernelPhase(spec, mixture, n, schedule=schedule)], rng)


@RODINIA.register("srad")
def _srad(scale: float, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    n = scaled_count(2000, scale, minimum=16)
    srad1 = _spec(
        "srad_cuda_1", grid=16384, block=256, fp32=60, sfu=6, loads=20, stores=8,
        memory_boundedness=0.6, working_set_mb=64.0,
    )
    srad2 = _spec(
        "srad_cuda_2", grid=16384, block=256, fp32=40, loads=18, stores=10,
        memory_boundedness=0.7, working_set_mb=64.0,
    )
    mix = ContextMixture.single(work_jitter=0.04, locality=0.5, locality_jitter=0.05)
    phases = [KernelPhase(srad1, mix, n // 2), KernelPhase(srad2, mix, n // 2)]
    return assemble("srad", "rodinia", phases, rng)


def workload_names() -> List[str]:
    """The 13 Rodinia-style workload names."""
    return RODINIA.names()


def generate(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Generate one Rodinia-style workload by name."""
    return RODINIA.generate(name, scale=scale, seed=seed)
