"""Static and dynamic descriptions of GPU kernels.

The data model mirrors what the paper's tooling observes about a kernel:

* :class:`KernelSpec` is the *static* view — the compiled kernel code plus
  its launch configuration.  Everything a code-level profiler (NCU, NVBit,
  a BBV collector) can derive without timing the kernel lives here.
* :class:`LaunchContext` is the *dynamic* view — the runtime situation of a
  single invocation (which site of the compute graph launched it, how much
  effective work the inputs carry, how cache-friendly the resident data
  is).  The paper's central observation is that contexts are invisible to
  static signatures yet dominate execution time.
* :class:`KernelInvocation` ties one spec to one context at one position in
  the workload's launch sequence.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..seeding import stable_text_seed

__all__ = [
    "InstructionMix",
    "MemoryPattern",
    "KernelSpec",
    "LaunchContext",
    "KernelInvocation",
    "WARP_SIZE",
]

#: Number of threads per warp, fixed across every modeled GPU generation.
WARP_SIZE = 32


@dataclass(frozen=True)
class InstructionMix:
    """Per-thread instruction counts of one kernel.

    The counts describe a single thread's dynamic instruction stream for a
    nominal (``work_scale == 1``) invocation.  Dynamic profilers scale these
    by thread count and by the invocation's work scale.
    """

    fp32: int = 0
    fp16: int = 0
    int_alu: int = 0
    sfu: int = 0
    load_global: int = 0
    store_global: int = 0
    load_shared: int = 0
    store_shared: int = 0
    branch: int = 0

    def total(self) -> int:
        """Total per-thread instruction count."""
        return (
            self.fp32
            + self.fp16
            + self.int_alu
            + self.sfu
            + self.load_global
            + self.store_global
            + self.load_shared
            + self.store_shared
            + self.branch
        )

    def memory_ops(self) -> int:
        """Per-thread count of global-memory operations."""
        return self.load_global + self.store_global

    def shared_ops(self) -> int:
        """Per-thread count of shared-memory operations."""
        return self.load_shared + self.store_shared

    def compute_ops(self) -> int:
        """Per-thread count of arithmetic (non-memory) operations."""
        return self.fp32 + self.fp16 + self.int_alu + self.sfu

    def as_dict(self) -> Dict[str, int]:
        """Return the mix as a plain ``{field: count}`` dictionary."""
        return dataclasses.asdict(self)

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a copy with every count scaled by ``factor``.

        Counts are rounded to the nearest integer but never below zero.
        Used to model workloads (e.g. Rodinia's ``gaussian``) whose dynamic
        instruction count shrinks or grows across invocations.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return InstructionMix(
            **{k: max(0, int(round(v * factor))) for k, v in self.as_dict().items()}
        )


@dataclass(frozen=True)
class MemoryPattern:
    """How a kernel touches global memory.

    ``stride_bytes`` is the dominant inter-thread access stride;
    ``random_fraction`` is the share of accesses with no spatial locality
    (e.g. embedding-table gathers); ``working_set_bytes`` is the footprint
    an invocation streams through at nominal work scale.
    """

    stride_bytes: int = 4
    random_fraction: float = 0.0
    working_set_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.stride_bytes <= 0:
            raise ValueError("stride_bytes must be positive")
        if not 0.0 <= self.random_fraction <= 1.0:
            raise ValueError("random_fraction must be within [0, 1]")
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")

    def coalescing_factor(self) -> float:
        """Fraction of a 128-byte transaction that strided accesses use.

        A unit-stride float access is perfectly coalesced (factor 1.0); a
        128-byte-or-wider stride wastes the whole line on one element.
        """
        useful = min(1.0, 128.0 / max(self.stride_bytes * WARP_SIZE, 128.0) * WARP_SIZE / 32.0)
        return max(useful, 4.0 / 128.0)


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a GPU kernel and its launch configuration.

    Two invocations of the same :class:`KernelSpec` are indistinguishable
    to every code-level signature the baseline samplers use (instruction
    mix, basic-block vector, launch geometry).  Their runtime behaviour may
    still differ through their :class:`LaunchContext`.
    """

    name: str
    grid_dim: Tuple[int, int, int] = (1, 1, 1)
    block_dim: Tuple[int, int, int] = (128, 1, 1)
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: MemoryPattern = field(default_factory=MemoryPattern)
    #: 0 → pure compute-bound, 1 → pure memory-bound.  Drives both the
    #: analytic timing split and the run-to-run jitter magnitude.
    memory_boundedness: float = 0.5
    #: Number of static basic blocks; the BBV profiler derives vector
    #: dimensionality from this.
    num_basic_blocks: int = 16
    #: Seed material so the same spec always produces the same BBV shape.
    bbv_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel name must be non-empty")
        if any(d <= 0 for d in self.grid_dim) or any(d <= 0 for d in self.block_dim):
            raise ValueError("grid/block dimensions must be positive")
        if not 0.0 <= self.memory_boundedness <= 1.0:
            raise ValueError("memory_boundedness must be within [0, 1]")
        if self.num_basic_blocks <= 0:
            raise ValueError("num_basic_blocks must be positive")

    # -- launch geometry -------------------------------------------------
    def num_blocks(self) -> int:
        """Thread blocks (CTAs) per launch."""
        gx, gy, gz = self.grid_dim
        return gx * gy * gz

    def threads_per_block(self) -> int:
        bx, by, bz = self.block_dim
        return bx * by * bz

    def num_threads(self) -> int:
        """Total threads per launch."""
        return self.num_blocks() * self.threads_per_block()

    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block() / WARP_SIZE)

    def num_warps(self) -> int:
        """Total warps per launch."""
        return self.num_blocks() * self.warps_per_block()

    # -- derived static features -----------------------------------------
    def static_instruction_count(self) -> int:
        """Dynamic instruction count at nominal work scale."""
        return self.mix.total() * self.num_threads()

    def arithmetic_intensity(self) -> float:
        """Compute ops per byte of global traffic at nominal scale."""
        bytes_moved = max(self.mix.memory_ops() * 4, 1)
        return self.mix.compute_ops() / bytes_moved

    def base_bbv(self) -> np.ndarray:
        """Deterministic basic-block execution-count vector for this spec.

        The vector models the kernel's control-flow profile: a handful of
        hot blocks (inner loops) and a tail of cold blocks.  It depends
        only on the spec, so every invocation of the same kernel yields a
        near-identical BBV — precisely the blindness of BBV-based
        signatures that Figure 10 of the paper illustrates.
        """
        # hash(name) is process-salted; stable_text_seed is not, so the
        # same spec yields the same BBV in every process and run.
        rng = np.random.default_rng(stable_text_seed(self.name, self.bbv_seed))
        weights = rng.pareto(1.5, size=self.num_basic_blocks) + 1.0
        counts = weights / weights.sum() * max(self.mix.total(), 1)
        return counts.astype(np.float64)


@dataclass(frozen=True)
class LaunchContext:
    """Runtime context of a single kernel invocation.

    ``context_id`` identifies the launch site within the program's compute
    graph (e.g. "attention projection in layer 7" vs "LM head").  The two
    continuous knobs model the paper's two sources of runtime
    heterogeneity:

    * ``work_scale`` — relative amount of effective work (input length,
      sparsity, early-exit iterations).  Distinct values per context create
      the *multiple peaks* of Figure 1.
    * ``locality`` — cache friendliness of the data the invocation touches
      in ``[0, 1]``; low locality means long, variable memory latencies and
      creates the *wide* distributions of Figure 1.
    * ``efficiency`` — pipeline utilization of the compute side (tensor
      layout, memory alignment, dependency chains).  Like locality it is
      invisible to instruction counts and BBVs: the paper's sgemm peaks
      occur "with identical code and consistent parameters (e.g., grid
      size, block size, and instruction count)".
    """

    context_id: int = 0
    work_scale: float = 1.0
    locality: float = 0.5
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.work_scale <= 0:
            raise ValueError("work_scale must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        if self.efficiency <= 0:
            raise ValueError("efficiency must be positive")


@dataclass(frozen=True)
class KernelInvocation:
    """One kernel launch: a spec, a context, and its launch-sequence index."""

    index: int
    spec: KernelSpec
    context: LaunchContext

    @property
    def name(self) -> str:
        """Kernel name, the primary grouping key for every sampler."""
        return self.spec.name

    def dynamic_instruction_count(self) -> int:
        """Instructions actually executed, as a dynamic profiler reports."""
        return max(1, int(round(self.spec.static_instruction_count() * self.context.work_scale)))
