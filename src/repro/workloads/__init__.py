"""Workload modeling: kernels, launch contexts, and benchmark suites."""

from .contexts import ContextMixture, ContextMode
from .kernel import (
    WARP_SIZE,
    InstructionMix,
    KernelInvocation,
    KernelSpec,
    LaunchContext,
    MemoryPattern,
)
from .suites import load_suite, load_workload, suite_names
from .workload import Workload, WorkloadBuilder

__all__ = [
    "WARP_SIZE",
    "InstructionMix",
    "MemoryPattern",
    "KernelSpec",
    "LaunchContext",
    "KernelInvocation",
    "ContextMode",
    "ContextMixture",
    "Workload",
    "WorkloadBuilder",
    "suite_names",
    "load_suite",
    "load_workload",
]
