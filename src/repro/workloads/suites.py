"""Suite-level access to the three benchmark collections of Table 2."""

from __future__ import annotations

from typing import Dict, List

from .generators.base import WorkloadRegistry
from .generators.casio import CASIO
from .generators.huggingface import HUGGINGFACE
from .generators.rodinia import RODINIA
from .workload import Workload

__all__ = ["SUITES", "suite_names", "load_suite", "load_workload"]

SUITES: Dict[str, WorkloadRegistry] = {
    "rodinia": RODINIA,
    "casio": CASIO,
    "huggingface": HUGGINGFACE,
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def _registry(suite: str) -> WorkloadRegistry:
    try:
        return SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; available: {suite_names()}") from None


def load_suite(suite: str, scale: float = 1.0, seed: int = 0) -> List[Workload]:
    """Generate every workload of a suite.

    ``scale`` shrinks invocation counts proportionally — experiments use
    1.0; tests use small fractions.
    """
    return _registry(suite).generate_all(scale=scale, seed=seed)


def load_workload(suite: str, name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Generate one named workload from a suite."""
    return _registry(suite).generate(name, scale=scale, seed=seed)
