"""Runtime-context mixtures for kernel launches.

The paper's Figure 1 shows that repeated invocations of one kernel form a
*mixture* of runtime behaviours: several narrow peaks (distinct launch
sites / input shapes) and, for memory-bound kernels, wide jittery spreads.
:class:`ContextMixture` is the generative counterpart — each
:class:`ContextMode` is one peak, and drawing a launch sequence from the
mixture yields the per-invocation ``(context_id, work_scale, locality)``
columns a :class:`~repro.workloads.workload.WorkloadBuilder` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ContextMode", "ContextMixture"]


@dataclass(frozen=True)
class ContextMode:
    """One runtime context (one execution-time peak) of a kernel.

    Parameters
    ----------
    context_id:
        Launch-site identifier recorded on each invocation.
    weight:
        Relative frequency of this context in the launch stream.
    work_scale / work_jitter:
        Mean and relative standard deviation of the effective-work
        multiplier.  ``work_jitter`` widens the peak.
    locality / locality_jitter:
        Mean and absolute standard deviation of cache friendliness.
    efficiency:
        Compute-pipeline utilization multiplier (tensor layout, memory
        alignment).  Differs between launch sites of the *same* kernel
        with identical instruction counts — the paper's sgemm peaks.
    """

    context_id: int
    weight: float = 1.0
    work_scale: float = 1.0
    work_jitter: float = 0.0
    locality: float = 0.5
    locality_jitter: float = 0.0
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.work_scale <= 0:
            raise ValueError("work_scale must be positive")
        if self.work_jitter < 0 or self.locality_jitter < 0:
            raise ValueError("jitter values must be non-negative")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        if self.efficiency <= 0:
            raise ValueError("efficiency must be positive")


@dataclass
class ContextMixture:
    """A weighted set of :class:`ContextMode` peaks for one kernel."""

    modes: List[ContextMode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.modes:
            raise ValueError("a context mixture needs at least one mode")
        ids = [m.context_id for m in self.modes]
        if len(set(ids)) != len(ids):
            raise ValueError("context_ids within a mixture must be unique")

    @classmethod
    def single(
        cls,
        work_scale: float = 1.0,
        work_jitter: float = 0.0,
        locality: float = 0.5,
        locality_jitter: float = 0.0,
        context_id: int = 0,
        efficiency: float = 1.0,
    ) -> "ContextMixture":
        """Mixture with one mode — a homogeneous kernel."""
        return cls(
            [
                ContextMode(
                    context_id=context_id,
                    work_scale=work_scale,
                    work_jitter=work_jitter,
                    locality=locality,
                    locality_jitter=locality_jitter,
                    efficiency=efficiency,
                )
            ]
        )

    @property
    def num_modes(self) -> int:
        return len(self.modes)

    def weights(self) -> np.ndarray:
        w = np.array([m.weight for m in self.modes], dtype=np.float64)
        return w / w.sum()

    def _fill(
        self, assignment: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Materialize launch columns for a per-launch mode assignment."""
        n = len(assignment)
        context_ids = np.empty(n, dtype=np.int32)
        work_scales = np.empty(n, dtype=np.float64)
        localities = np.empty(n, dtype=np.float64)
        efficiencies = np.empty(n, dtype=np.float64)
        for mode_index, mode in enumerate(self.modes):
            mask = assignment == mode_index
            count = int(mask.sum())
            if not count:
                continue
            context_ids[mask] = mode.context_id
            scales = mode.work_scale * (
                1.0 + mode.work_jitter * rng.standard_normal(count)
                if mode.work_jitter
                else np.ones(count)
            )
            work_scales[mask] = np.maximum(scales, mode.work_scale * 0.01)
            locs = mode.locality + (
                mode.locality_jitter * rng.standard_normal(count)
                if mode.locality_jitter
                else 0.0
            )
            localities[mask] = np.clip(locs, 0.0, 1.0)
            efficiencies[mask] = mode.efficiency
        return context_ids, work_scales, localities, efficiencies

    def draw(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``n`` launches from the mixture.

        Returns ``(context_ids, work_scales, localities, efficiencies)``
        arrays in launch order.  Work scales are truncated below at 1% of
        the mode mean and localities are clipped to ``[0, 1]``.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        choice = rng.choice(len(self.modes), size=n, p=self.weights())
        return self._fill(choice, rng)

    def schedule(
        self, sequence: Sequence[int], rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Draw launches following an explicit per-launch mode ``sequence``.

        ``sequence`` holds mode indices (positions into :attr:`modes`), not
        context ids.  Use this for deterministic phase structure — e.g. a
        kernel whose work shrinks monotonically across iterations.
        """
        seq = np.asarray(sequence, dtype=np.int64)
        if len(seq) and (seq.min() < 0 or seq.max() >= len(self.modes)):
            raise ValueError("sequence entries must index into modes")
        return self._fill(seq, rng)
