"""Workload container: the full launch sequence of a GPU application.

Large-scale workloads (the HuggingFace-style suite averages millions of
kernel calls in the paper) make per-invocation Python objects impractical,
so :class:`Workload` stores the launch sequence *columnarly* — parallel
NumPy arrays indexed by launch position — and materializes
:class:`~repro.workloads.kernel.KernelInvocation` views on demand.  Every
profiler and the hardware timing model operate directly on the columns,
which is what gives the reproduction the same near-linear scalability the
paper claims for STEM.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .kernel import KernelInvocation, KernelSpec, LaunchContext

__all__ = ["Workload", "WorkloadBuilder"]


@dataclass
class Workload:
    """A complete GPU workload as an ordered sequence of kernel launches.

    Attributes
    ----------
    name:
        Workload identifier (e.g. ``"bert_infer"``).
    suite:
        Benchmark-suite identifier (``"rodinia"``, ``"casio"``,
        ``"huggingface"``, or ``"synthetic"``).
    specs:
        The distinct :class:`KernelSpec` objects launched by the workload.
    spec_ids:
        ``int32`` array, one entry per invocation, indexing into ``specs``.
    context_ids:
        ``int32`` array: launch-site identifier of each invocation.
    work_scales / localities / efficiencies:
        ``float64`` arrays: the dynamic context knobs of each invocation.
    """

    name: str
    suite: str
    specs: List[KernelSpec]
    spec_ids: np.ndarray
    context_ids: np.ndarray
    work_scales: np.ndarray
    localities: np.ndarray
    efficiencies: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(self.spec_ids)
        if self.efficiencies is None:
            self.efficiencies = np.ones(n, dtype=np.float64)
        for label, arr in (
            ("context_ids", self.context_ids),
            ("work_scales", self.work_scales),
            ("localities", self.localities),
            ("efficiencies", self.efficiencies),
        ):
            if len(arr) != n:
                raise ValueError(f"{label} has length {len(arr)}, expected {n}")
        if n and (self.spec_ids.min() < 0 or self.spec_ids.max() >= len(self.specs)):
            raise ValueError("spec_ids reference specs out of range")

    # -- size and iteration ------------------------------------------------
    def __len__(self) -> int:
        return len(self.spec_ids)

    @property
    def num_invocations(self) -> int:
        return len(self.spec_ids)

    def invocation(self, index: int) -> KernelInvocation:
        """Materialize the invocation at launch position ``index``."""
        spec = self.specs[int(self.spec_ids[index])]
        context = LaunchContext(
            context_id=int(self.context_ids[index]),
            work_scale=float(self.work_scales[index]),
            locality=float(self.localities[index]),
            efficiency=float(self.efficiencies[index]),
        )
        return KernelInvocation(index=index, spec=spec, context=context)

    def invocations(self, indices: Iterable[int] = None) -> Iterator[KernelInvocation]:
        """Yield invocation views, optionally restricted to ``indices``."""
        if indices is None:
            indices = range(len(self))
        for i in indices:
            yield self.invocation(int(i))

    # -- grouping ------------------------------------------------------------
    def kernel_names(self) -> List[str]:
        """Distinct kernel names in first-launch order."""
        seen: Dict[str, None] = {}
        for sid in self.spec_ids:
            seen.setdefault(self.specs[int(sid)].name, None)
        return list(seen)

    def indices_by_name(self) -> Dict[str, np.ndarray]:
        """Map each kernel name to the launch indices that invoke it.

        This is the first stage of every kernel-level sampler in the paper
        ("kernel calls are grouped by names").
        """
        name_of_spec = np.array([s.name for s in self.specs])
        names = name_of_spec[self.spec_ids]
        groups: Dict[str, np.ndarray] = {}
        order = np.argsort(names, kind="stable")
        sorted_names = names[order]
        boundaries = np.flatnonzero(sorted_names[1:] != sorted_names[:-1]) + 1
        for chunk in np.split(order, boundaries):
            if len(chunk):
                groups[str(names[chunk[0]])] = np.sort(chunk)
        return groups

    def subset(self, indices: Sequence[int], name: str = None) -> "Workload":
        """Return a new workload containing only the given launch indices.

        The subset preserves launch order and re-uses the parent's spec
        table.  Used to build *reduced* workloads for full cycle-level
        simulation, mirroring the paper's Table 4 methodology.
        """
        idx = np.asarray(sorted(int(i) for i in indices), dtype=np.int64)
        return Workload(
            name=name or f"{self.name}[{len(idx)}]",
            suite=self.suite,
            specs=self.specs,
            spec_ids=self.spec_ids[idx].copy(),
            context_ids=self.context_ids[idx].copy(),
            work_scales=self.work_scales[idx].copy(),
            localities=self.localities[idx].copy(),
            efficiencies=self.efficiencies[idx].copy(),
        )

    def head(self, n: int, name: str = None) -> "Workload":
        """First ``n`` launches as a reduced workload."""
        return self.subset(range(min(n, len(self))), name=name)

    # -- per-spec column helpers ----------------------------------------------
    def spec_column(self, fn) -> np.ndarray:
        """Vectorize a per-spec scalar ``fn`` over all invocations.

        ``fn`` receives a :class:`KernelSpec` and must return a float; the
        result is gathered through ``spec_ids`` so the cost is
        ``O(len(specs)) + O(len(self))``.
        """
        per_spec = np.array([float(fn(s)) for s in self.specs], dtype=np.float64)
        return per_spec[self.spec_ids]

    def dynamic_instruction_counts(self) -> np.ndarray:
        """Per-invocation dynamic instruction counts (NVBit's view)."""
        static = self.spec_column(lambda s: s.static_instruction_count())
        return np.maximum(1, np.round(static * self.work_scales)).astype(np.int64)

    def fingerprint(self) -> str:
        """Stable content hash of the whole launch sequence.

        Covers the identity (name/suite), the spec table, and every
        per-invocation column byte-for-byte, so any change to the
        workload — a different scale, seed, subset, or generator tweak —
        yields a different fingerprint.  Used as (part of) the key of the
        on-disk profile cache: a stale cache entry can never be returned
        for a workload whose contents changed.
        """
        h = hashlib.sha256()
        h.update(f"{self.name}\x00{self.suite}\x00{len(self)}".encode())
        for spec in self.specs:
            h.update(repr(spec).encode())
        for column in (
            self.spec_ids,
            self.context_ids,
            self.work_scales,
            self.localities,
            self.efficiencies,
        ):
            h.update(np.ascontiguousarray(column).tobytes())
        return h.hexdigest()

    def describe(self) -> Dict[str, float]:
        """Summary statistics used by Table 2-style reporting."""
        return {
            "num_invocations": float(len(self)),
            "num_specs": float(len(self.specs)),
            "num_kernel_names": float(len(self.kernel_names())),
            "num_contexts": float(len(np.unique(self.context_ids))) if len(self) else 0.0,
        }


@dataclass
class WorkloadBuilder:
    """Incrementally assemble a :class:`Workload`.

    Generators append launches (possibly in bulk) and call :meth:`build`.
    Specs are deduplicated by identity of the spec object's name + launch
    geometry, so repeated launches of the same kernel stay cheap.
    """

    name: str
    suite: str = "synthetic"
    _specs: List[KernelSpec] = field(default_factory=list)
    _spec_index: Dict[KernelSpec, int] = field(default_factory=dict)
    _spec_ids: List[np.ndarray] = field(default_factory=list)
    _context_ids: List[np.ndarray] = field(default_factory=list)
    _work_scales: List[np.ndarray] = field(default_factory=list)
    _localities: List[np.ndarray] = field(default_factory=list)
    _efficiencies: List[np.ndarray] = field(default_factory=list)

    def spec_id(self, spec: KernelSpec) -> int:
        """Intern a spec, returning its table index."""
        existing = self._spec_index.get(spec)
        if existing is not None:
            return existing
        self._specs.append(spec)
        self._spec_index[spec] = len(self._specs) - 1
        return len(self._specs) - 1

    def launch(
        self,
        spec: KernelSpec,
        context_id: int = 0,
        work_scale: float = 1.0,
        locality: float = 0.5,
        efficiency: float = 1.0,
    ) -> None:
        """Append a single kernel launch."""
        self.launch_bulk(
            spec,
            context_ids=np.array([context_id], dtype=np.int32),
            work_scales=np.array([work_scale], dtype=np.float64),
            localities=np.array([locality], dtype=np.float64),
            efficiencies=np.array([efficiency], dtype=np.float64),
        )

    def launch_bulk(
        self,
        spec: KernelSpec,
        context_ids: np.ndarray,
        work_scales: np.ndarray,
        localities: np.ndarray,
        efficiencies: np.ndarray = None,
    ) -> None:
        """Append many launches of one spec (vectorized fast path)."""
        n = len(context_ids)
        if efficiencies is None:
            efficiencies = np.ones(n, dtype=np.float64)
        if len(work_scales) != n or len(localities) != n or len(efficiencies) != n:
            raise ValueError("bulk launch arrays must have equal length")
        sid = self.spec_id(spec)
        self._spec_ids.append(np.full(n, sid, dtype=np.int32))
        self._context_ids.append(np.asarray(context_ids, dtype=np.int32))
        self._work_scales.append(np.asarray(work_scales, dtype=np.float64))
        self._localities.append(np.asarray(localities, dtype=np.float64))
        self._efficiencies.append(np.asarray(efficiencies, dtype=np.float64))

    def num_launches(self) -> int:
        return int(sum(len(a) for a in self._spec_ids))

    def build(self) -> Workload:
        """Finalize into an immutable-by-convention :class:`Workload`."""

        def concat(chunks: List[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(chunks).astype(dtype, copy=False)

        return Workload(
            name=self.name,
            suite=self.suite,
            specs=list(self._specs),
            spec_ids=concat(self._spec_ids, np.int32),
            context_ids=concat(self._context_ids, np.int32),
            work_scales=concat(self._work_scales, np.float64),
            localities=concat(self._localities, np.float64),
            efficiencies=concat(self._efficiencies, np.float64),
        )
