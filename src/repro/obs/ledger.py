"""Run ledger: an append-only JSONL history of every run's vitals.

Every ledgered invocation — CLI verbs, benchmarks, the CI perf gate —
appends one schema-versioned :class:`RunRecord` to
``<runs_dir>/ledger.jsonl`` (default ``.repro/runs/``).  A record ties a
run's *identity* (command, label, config fingerprint) to its *outcome*
(counters, cache hit rates, requested vs achieved ε, resilience events)
and its *cost* (per-phase wall/self time, CPU, peak RSS per worker), so
the repo accumulates a perf trajectory instead of a pile of mortal
processes, and ``repro obs history/compare/check`` can ask "did this
get slower?" with data.

Determinism contract
--------------------
Everything outside the ``timing`` section is a pure function of the run
configuration and its results: two identical runs differ **only** under
``timing`` (timestamps, durations, RSS, sequence number), so
``repro obs compare`` of two identical runs diffs clean.  ``run_id`` is
the SHA-256 of the deterministic identity core and doubles as the
grouping key for history and median baselines.

Torn-line tolerance
-------------------
A crash mid-append can leave a partial last line.  Appends first repair
a missing trailing newline so the next record never concatenates onto a
torn one, and reads skip unparseable lines — one interrupted run can
never poison the ledger.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import _jsonable

__all__ = [
    "DEFAULT_RUNS_DIR",
    "RUNS_DIR_ENV",
    "RUN_SCHEMA_VERSION",
    "RunLedger",
    "RunRecord",
    "build_run_record",
    "canonical_json",
    "git_revision",
]

#: Bumped whenever RunRecord gains/renames fields consumers rely on.
RUN_SCHEMA_VERSION = 1

#: Ledger location when neither ``--runs-dir`` nor ``REPRO_RUNS_DIR`` is set.
DEFAULT_RUNS_DIR = os.path.join(".repro", "runs")

#: Environment override for the runs directory; empty string disables
#: ledger recording entirely.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

LEDGER_FILENAME = "ledger.jsonl"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, coerced scalars."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def git_revision(start: Optional[str] = None) -> Optional[str]:
    """Current commit hash via plain file reads (no subprocess).

    Walks up from ``start`` (default: cwd) to the nearest ``.git``,
    resolves ``HEAD`` through one level of symref, falling back to
    ``packed-refs``.  Returns None outside a repository.
    """
    directory = os.path.abspath(start or os.getcwd())
    while True:
        git_dir = os.path.join(directory, ".git")
        if os.path.isdir(git_dir):
            break
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent
    try:
        with open(os.path.join(git_dir, "HEAD"), "r", encoding="utf-8") as fh:
            head = fh.read().strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.split(None, 1)[1].strip()
    ref_path = os.path.join(git_dir, *ref.split("/"))
    try:
        with open(ref_path, "r", encoding="utf-8") as fh:
            return fh.read().strip() or None
    except OSError:
        pass
    try:
        with open(os.path.join(git_dir, "packed-refs"), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith(("#", "^")):
                    continue
                parts = line.split(" ", 1)
                if len(parts) == 2 and parts[1] == ref:
                    return parts[0]
    except OSError:
        pass
    return None


def host_context() -> Dict[str, Any]:
    """Where the run happened; stable on one machine, varies across CI."""
    return {
        "git_rev": git_revision(),
        "host": platform.node(),
        "python": platform.python_version(),
        "platform": sys_platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def sys_platform() -> str:
    return platform.system().lower()


@dataclass
class RunRecord:
    """One ledger line: identity + outcome + (isolated) timing.

    Sections:

    ``command``/``label``/``config``
        The run's identity — what was invoked, on what configuration.
        ``config`` should carry the experiment fingerprint when one
        exists.
    ``context``
        Host facts (git rev, hostname, python, platform).
    ``metrics``
        Deterministic outcome: decision counters, cache hit rates,
        requested/achieved ε, resilience summary, benchmark metrics.
    ``timing``
        Everything clock- or host-load-dependent: timestamp, sequence
        number, wall/CPU seconds, per-phase wall & self time, resource
        snapshots (parent + per worker).  Excluded from ``run_id`` and
        from determinism comparisons.
    """

    command: str
    label: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    context: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = RUN_SCHEMA_VERSION
    run_id: str = ""

    def __post_init__(self) -> None:
        if not self.run_id:
            self.run_id = self.compute_run_id()

    def identity(self) -> Dict[str, Any]:
        """The deterministic core hashed into ``run_id``."""
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "label": self.label,
            "config": self.config,
        }

    def compute_run_id(self) -> str:
        digest = hashlib.sha256(canonical_json(self.identity()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def deterministic_view(self) -> Dict[str, Any]:
        """The record minus ``timing`` — identical across identical runs."""
        payload = self.to_dict()
        payload.pop("timing", None)
        return payload

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "command": self.command,
            "label": self.label,
            "config": _jsonable(self.config),
            "context": _jsonable(self.context),
            "metrics": _jsonable(self.metrics),
            "timing": _jsonable(self.timing),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        return cls(
            command=str(payload.get("command", "?")),
            label=str(payload.get("label", "")),
            config=dict(payload.get("config") or {}),
            context=dict(payload.get("context") or {}),
            metrics=dict(payload.get("metrics") or {}),
            timing=dict(payload.get("timing") or {}),
            schema_version=int(payload.get("schema_version", RUN_SCHEMA_VERSION)),
            run_id=str(payload.get("run_id", "")),
        )


class RunLedger:
    """Append-only JSONL store of RunRecords under one runs directory."""

    def __init__(self, root: str = DEFAULT_RUNS_DIR):
        self.root = root
        self.path = os.path.join(root, LEDGER_FILENAME)

    # -- writing --------------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Append one record; stamps ``timing.seq`` with its line index."""
        os.makedirs(self.root, exist_ok=True)
        needs_newline = False
        seq = 0
        if os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                data = fh.read()
            seq = data.count(b"\n") + (1 if data and not data.endswith(b"\n") else 0)
            needs_newline = bool(data) and not data.endswith(b"\n")
        record.timing["seq"] = seq
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            if needs_newline:  # repair a torn last line before appending
                fh.write("\n")
            fh.write(line + "\n")
        return record

    # -- reading --------------------------------------------------------------
    def read(self) -> List[RunRecord]:
        """All parseable records, oldest first; torn lines are skipped."""
        records: List[RunRecord] = []
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue  # torn/corrupt line: skip, never raise
                if isinstance(payload, dict):
                    records.append(RunRecord.from_dict(payload))
        return records

    def history(self, run_id: Optional[str] = None,
                command: Optional[str] = None) -> List[RunRecord]:
        """Records filtered by run_id and/or command, oldest first."""
        records = self.read()
        if run_id is not None:
            records = [r for r in records if r.run_id.startswith(run_id)]
        if command is not None:
            records = [r for r in records if r.command == command]
        return records

    def latest(self, run_id: Optional[str] = None,
               command: Optional[str] = None) -> Optional[RunRecord]:
        records = self.history(run_id=run_id, command=command)
        return records[-1] if records else None

    def groups(self) -> Dict[str, List[RunRecord]]:
        """Records grouped by run_id (insertion-ordered), oldest first."""
        grouped: Dict[str, List[RunRecord]] = {}
        for record in self.read():
            grouped.setdefault(record.run_id, []).append(record)
        return grouped


def _cache_rates(counters: Dict[str, int]) -> Dict[str, Dict[str, float]]:
    """Hit rates for the three memo tiers, from their obs counters."""
    specs: List[Tuple[str, List[str], List[str]]] = [
        ("profile_cache",
         ["parallel.profile_cache.memory_hits", "parallel.profile_cache.disk_hits"],
         ["parallel.profile_cache.misses"]),
        ("sim_cache", ["memo.sim_cache.hits"], ["memo.sim_cache.misses"]),
        ("tree_cache", ["memo.tree_cache.hits"], ["memo.tree_cache.misses"]),
    ]
    rates: Dict[str, Dict[str, float]] = {}
    for name, hit_keys, miss_keys in specs:
        hits = sum(int(counters.get(k, 0)) for k in hit_keys)
        misses = sum(int(counters.get(k, 0)) for k in miss_keys)
        total = hits + misses
        if total:
            rates[name] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 6),
            }
    return rates


def _resilience_summary(counters: Dict[str, int],
                        gauges: Dict[str, float]) -> Dict[str, Any]:
    summary: Dict[str, Any] = {}
    for key, counter in (
        ("quarantined", "resilience.samples_quarantined"),
        ("retries", "resilience.retries"),
        ("degraded_runs", "resilience.degraded_runs"),
        ("checkpoint_cells_replayed", "resilience.checkpoint_cells_replayed"),
        # Self-healing parallel execution (repro.parallel.supervisor).
        ("worker_deaths", "parallel.supervisor.worker_deaths"),
        ("pool_rebuilds", "parallel.supervisor.pool_rebuilds"),
        ("task_redispatches", "parallel.supervisor.redispatches"),
        ("stalls_detected", "parallel.supervisor.stalls_detected"),
        ("speculation_wins", "parallel.supervisor.speculation_wins"),
        ("tasks_poisoned", "parallel.supervisor.tasks_poisoned"),
        ("cells_quarantined", "parallel.grid.cells_quarantined"),
    ):
        if counter in counters:
            summary[key] = int(counters[counter])
    cache_quarantined = int(
        counters.get("parallel.profile_cache.corrupt_quarantined", 0)
    ) + int(counters.get("memo.sim_cache.corrupt_quarantined", 0))
    if cache_quarantined:
        summary["cache_entries_quarantined"] = cache_quarantined
    return summary


def build_run_record(
    command: str,
    label: str = "",
    config: Optional[Dict[str, Any]] = None,
    session: Optional[Any] = None,
    report: Optional[Any] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    workers: Optional[Any] = None,
    resources: Optional[Dict[str, float]] = None,
    extra_metrics: Optional[Dict[str, Any]] = None,
    status: int = 0,
) -> RunRecord:
    """Assemble a RunRecord from a finished run.

    ``session`` is the run's :class:`~repro.obs.ObsSession`; callers
    reconstructing a run from saved files pass a ``report``
    (:func:`~repro.obs.report.build_run_report`) and metrics
    ``snapshot`` instead, and uninstrumented callers like benchmarks
    pass ``extra_metrics`` directly.  ``resources`` is a parent
    :meth:`~repro.obs.resource.ResourceMonitor.snapshot`.
    """
    import time  # local: only the timing section may see a wall clock

    metrics: Dict[str, Any] = {"status": int(status)}
    timing: Dict[str, Any] = {
        # Sanctioned wall-clock read: the timestamp lives exclusively
        # under `timing`, which is excluded from run identity,
        # determinism checks, and every cache key.
        "timestamp": round(time.time(), 3),  # repro-lint: disable=wall-clock
    }

    if session is not None:
        report = session.run_report()
        snapshot = session.metrics.snapshot()
        workers = getattr(session, "worker_resources", None)

    if snapshot is not None:
        counters = {k: int(v) for k, v in snapshot.get("counters", {}).items()}
        gauges = {k: float(v) for k, v in snapshot.get("gauges", {}).items()}
        metrics["counters"] = dict(sorted(counters.items()))
        cache = _cache_rates(counters)
        if cache:
            metrics["cache"] = cache
        if "resilience.requested_epsilon" in gauges:
            metrics["epsilon"] = {
                "requested": gauges["resilience.requested_epsilon"],
                "achieved": gauges.get("resilience.achieved_epsilon"),
            }
        resilience = _resilience_summary(counters, gauges)
        if resilience:
            metrics["resilience"] = resilience
    if report is not None:
        timing["wall_s"] = round(report.wall_us / 1e6, 6)
        timing["phases"] = {
            phase: {
                "spans": summary.spans,
                "total_s": round(summary.total_us / 1e6, 6),
                "self_s": round(max(0.0, summary.self_us) / 1e6, 6),
            }
            for phase, summary in sorted(report.phases.items())
            if summary.spans
        }
    if workers:
        timing["workers"] = sorted(
            ({"worker": worker, **snap} for worker, snap in workers),
            key=lambda w: str(w["worker"]),
        )

    if resources:
        timing["resource"] = dict(resources)
    if extra_metrics:
        for key, value in extra_metrics.items():
            metrics[key] = _jsonable(value)

    return RunRecord(
        command=command,
        label=label,
        config=dict(config or {}),
        context=host_context(),
        metrics=metrics,
        timing=timing,
    )


def iter_numeric_leaves(value: Any, prefix: str = "") -> Iterable[Tuple[str, float]]:
    """Yield (dotted key, float) for every numeric leaf of a JSON tree."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield prefix, float(value)
        return
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            for leaf in iter_numeric_leaves(value[key], child):
                yield leaf
    elif isinstance(value, list):
        for index, item in enumerate(value):
            child = f"{prefix}[{index}]"
            for leaf in iter_numeric_leaves(item, child):
                yield leaf
