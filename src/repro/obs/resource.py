"""Sampling resource monitor: peak RSS and CPU time per process.

A :class:`ResourceMonitor` wraps any unit of work — the whole CLI run in
the parent, one task batch inside a pool worker — and reports a small
JSON-ready snapshot::

    {"max_rss_kb": 184320, "cpu_user_s": 1.91, "cpu_system_s": 0.12,
     "wall_s": 2.05, "samples": 38}

RSS comes from ``/proc/self/status`` (``VmRSS`` sampled on a daemon
thread, reconciled with the kernel's own ``VmHWM`` high-water mark on
exit); CPU time from :func:`os.times`.  On hosts without ``/proc`` the
monitor falls back to ``resource.getrusage`` and reports zero samples.
Only monotonic timers are used, so monitored code remains deterministic
and cache-safe.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, Optional

__all__ = ["ResourceMonitor", "read_rss_kb"]

_PROC_STATUS = "/proc/self/status"


def _read_status_kb(field: str) -> Optional[int]:
    """One ``Vm*`` field from /proc/self/status, in KiB, or None."""
    try:
        with open(_PROC_STATUS, "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rusage_maxrss_kb() -> Optional[int]:
    """Peak RSS via getrusage, normalised to KiB (macOS reports bytes)."""
    try:
        import resource as _resource  # stdlib; absent on some platforms
    except ImportError:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def read_rss_kb() -> Optional[int]:
    """Current resident set size in KiB, or None when unobservable."""
    return _read_status_kb("VmRSS")


class ResourceMonitor:
    """Context manager sampling RSS while measuring CPU and wall time.

    The sampling thread is a daemon waking every ``interval_s``; each
    sample updates the observed peak (and, when observability is
    enabled, the ``resource.rss_kb`` gauge — live progress telemetry for
    long campaigns).  ``snapshot()`` is valid after exit.
    """

    def __init__(self, interval_s: float = 0.05):
        self.interval_s = float(interval_s)
        self.samples = 0
        self._peak_rss_kb = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._start_wall = 0.0
        self._start_cpu = (0.0, 0.0)
        self._wall_s = 0.0
        self._cpu_user_s = 0.0
        self._cpu_system_s = 0.0

    # -- sampling loop --------------------------------------------------------
    def _sample_once(self) -> None:
        rss = read_rss_kb()
        if rss is not None:
            if rss > self._peak_rss_kb:
                self._peak_rss_kb = rss
            self.samples += 1
            from . import set_gauge  # late import: obs package init order

            set_gauge("resource.rss_kb", float(rss))

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    # -- context protocol -----------------------------------------------------
    def __enter__(self) -> "ResourceMonitor":
        times = os.times()
        self._start_cpu = (times.user, times.system)
        self._start_wall = time.perf_counter()
        self._stop.clear()
        self._sample_once()
        if self.samples:  # /proc is readable; keep sampling in background
            self._thread = threading.Thread(
                target=self._run, name="repro-resource-monitor", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        self._wall_s = time.perf_counter() - self._start_wall
        times = os.times()
        self._cpu_user_s = times.user - self._start_cpu[0]
        self._cpu_system_s = times.system - self._start_cpu[1]
        # The kernel's own high-water mark beats any sampling cadence.
        peak = _read_status_kb("VmHWM")
        if peak is None:
            peak = _rusage_maxrss_kb()
        if peak is not None and peak > self._peak_rss_kb:
            self._peak_rss_kb = peak

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready resource summary (valid after ``__exit__``)."""
        return {
            "max_rss_kb": int(self._peak_rss_kb),
            "cpu_user_s": round(self._cpu_user_s, 6),
            "cpu_system_s": round(self._cpu_system_s, 6),
            "wall_s": round(self._wall_s, 6),
            "samples": int(self.samples),
        }
