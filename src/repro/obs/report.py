"""Run reports: per-phase wall-clock and decision summaries.

A run report answers the two questions every Figure-9-style analysis
starts from: *where did the wall-clock go* (profile → cluster → plan →
simulate) and *what did the sampler decide* (splits accepted, samples
allocated, kernels simulated).  It is built either from a live
:class:`~repro.obs.tracer.Tracer` + :class:`~repro.obs.metrics.MetricsRegistry`
or from their exported files, so ``repro obs trace.json --metrics m.json``
reconstructs the same tables after the fact.

Self-time is recovered from span containment: within one thread, a span
whose interval lies inside another's is its child, and the parent's
self-time excludes it — so nested instrumentation (a ``sampler.cluster``
span wrapping many ``root.split`` spans) never double-counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple, Union

from .flame import CriticalStep, critical_path, normalize_events, self_times
from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = ["PhaseSummary", "RunReport", "build_run_report", "PHASES"]

#: Ordered (name-prefix, phase) mapping; first match wins.  A prefix
#: matches ``name == prefix`` or ``name.startswith(prefix + ".")``.
PHASE_PREFIXES: List[Tuple[str, str]] = [
    ("profile", "profile"),
    ("sampler.cluster", "cluster"),
    ("root", "cluster"),
    ("cluster", "cluster"),
    ("sampler", "plan"),
    ("stem", "plan"),
    ("baseline", "plan"),
    ("plan", "plan"),
    ("sim", "simulate"),
    ("multigpu", "simulate"),
    ("resilience", "resilience"),
    ("memo", "memo"),
]

#: Canonical phase display order.
PHASES: List[str] = ["profile", "cluster", "plan", "simulate", "resilience", "memo", "other"]


def phase_of(name: str) -> str:
    for prefix, phase in PHASE_PREFIXES:
        if name == prefix or name.startswith(prefix + "."):
            return phase
    return "other"


@dataclass
class PhaseSummary:
    """Aggregated wall-clock of one pipeline phase."""

    phase: str
    spans: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    #: span name -> (count, self_us)
    by_name: Dict[str, Tuple[int, float]] = field(default_factory=dict)


@dataclass
class RunReport:
    """Per-phase wall-clock plus the sampler's decision counters."""

    phases: Dict[str, PhaseSummary]
    counters: Dict[str, int]
    gauges: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]
    wall_us: float = 0.0
    #: Heaviest-descendant chain from the longest root span, root first.
    critical_path: List[CriticalStep] = field(default_factory=list)

    @property
    def accounted_us(self) -> float:
        return sum(p.self_us for p in self.phases.values())

    def to_text(self, top: int = 8) -> str:
        lines: List[str] = []
        lines.append("Run report")
        lines.append("=" * 64)
        lines.append("")
        lines.append("Wall-clock by phase (self-time, no double counting)")
        header = f"{'phase':<10} {'spans':>7} {'self ms':>10} {'share %':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        denom = self.accounted_us or 1.0
        for phase in PHASES:
            summary = self.phases.get(phase)
            if summary is None or summary.spans == 0:
                continue
            lines.append(
                f"{phase:<10} {summary.spans:>7d} "
                f"{summary.self_us / 1000.0:>10.3f} "
                f"{summary.self_us / denom * 100.0:>8.1f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<10} {sum(p.spans for p in self.phases.values()):>7d} "
            f"{self.accounted_us / 1000.0:>10.3f} {'100.0':>8}"
        )
        if self.wall_us:
            lines.append(f"elapsed wall-clock: {self.wall_us / 1000.0:.3f} ms")

        if self.critical_path:
            lines.append("")
            lines.append("Critical path (heaviest descendant chain)")
            header = f"{'span':<32} {'total ms':>10} {'self ms':>10}"
            lines.append(header)
            lines.append("-" * len(header))
            for step in self.critical_path[:top]:
                indent = "  " * step.depth + step.name
                lines.append(
                    f"{indent:<32} {step.dur_us / 1000.0:>10.3f} "
                    f"{step.self_us / 1000.0:>10.3f}"
                )

        hot = self.hottest_spans(top)
        if hot:
            lines.append("")
            lines.append(f"Hottest spans (top {len(hot)})")
            header = f"{'span':<28} {'calls':>7} {'self ms':>10}"
            lines.append(header)
            lines.append("-" * len(header))
            for name, count, self_us in hot:
                lines.append(f"{name:<28} {count:>7d} {self_us / 1000.0:>10.3f}")

        if self.counters:
            lines.append("")
            lines.append("Decision counters")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]}")

        interesting = {
            n: h for n, h in self.histograms.items() if h.get("count", 0)
        }
        if interesting:
            lines.append("")
            lines.append("Distributions")
            width = max(len(n) for n in interesting)
            for name in sorted(interesting):
                h = interesting[name]
                lines.append(
                    f"  {name:<{width}}  n={int(h['count'])} "
                    f"mean={h['mean']:.3g} p50={h['p50']:.3g} "
                    f"p90={h['p90']:.3g} max={h['max']:.3g}"
                )
        return "\n".join(lines)

    def hottest_spans(self, top: int = 8) -> List[Tuple[str, int, float]]:
        """(name, calls, self_us) of the most expensive span names."""
        merged: Dict[str, Tuple[int, float]] = {}
        for summary in self.phases.values():
            for name, (count, self_us) in summary.by_name.items():
                old_count, old_self = merged.get(name, (0, 0.0))
                merged[name] = (old_count + count, old_self + self_us)
        ranked = sorted(merged.items(), key=lambda kv: kv[1][1], reverse=True)
        return [(n, c, s) for n, (c, s) in ranked[: max(0, top)]]


# Containment analysis lives in .flame (shared with the collapsed-stack
# exporter and critical-path extraction); keep private aliases for the
# report's own call sites.
_normalize = normalize_events
_self_times = self_times


def build_run_report(
    spans: Union[Tracer, Sequence[Span], Sequence[Dict[str, Any]]],
    metrics: Union[MetricsRegistry, Dict[str, Any], None] = None,
) -> RunReport:
    """Aggregate spans (live or loaded) and metrics into a RunReport."""
    events = _normalize(spans)
    self_us = _self_times(events)

    phases: Dict[str, PhaseSummary] = {}
    for event, self_time in zip(events, self_us):
        phase = phase_of(event["name"])
        summary = phases.setdefault(phase, PhaseSummary(phase=phase))
        summary.spans += 1
        summary.total_us += event["dur"]
        summary.self_us += max(0.0, self_time)
        count, acc = summary.by_name.get(event["name"], (0, 0.0))
        summary.by_name[event["name"]] = (count + 1, acc + max(0.0, self_time))

    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    elif metrics is None:
        snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    else:
        snapshot = metrics

    wall_us = 0.0
    if events:
        wall_us = max(e["ts"] + e["dur"] for e in events) - min(
            e["ts"] for e in events
        )
    return RunReport(
        phases=phases,
        counters=dict(snapshot.get("counters", {})),
        gauges=dict(snapshot.get("gauges", {})),
        histograms=dict(snapshot.get("histograms", {})),
        wall_us=wall_us,
        critical_path=critical_path(events),
    )
