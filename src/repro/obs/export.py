"""Exporters: span trees to Chrome-trace JSON, metrics to plain JSON.

The Chrome trace format is the ``chrome://tracing`` / Perfetto "JSON
Array with metadata" flavor: a ``traceEvents`` list of complete events
(``"ph": "X"``) whose ``ts``/``dur`` are microseconds.  Open an exported
file directly in ``chrome://tracing`` or https://ui.perfetto.dev to see
the pipeline's phases on a timeline, one track per thread.

Metrics export is the registry snapshot plus a format header, so a saved
file is self-describing and `repro obs` can rebuild a run report from
the pair of files alone.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

from .events import _jsonable
from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "metrics_to_dict",
    "write_metrics_json",
    "load_metrics_json",
]

#: Schema tag written into every exported file.
FORMAT_VERSION = 1


def _spans_of(source: Union[Tracer, Sequence[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.finished()
    return list(source)


def chrome_trace(source: Union[Tracer, Sequence[Span]]) -> Dict[str, Any]:
    """Render finished spans as a Chrome-trace JSON object."""
    events = []
    for span in _spans_of(source):
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.dur_us,
                "pid": 0,
                "tid": span.thread_id,
                "args": _jsonable(
                    {"status": span.status, "depth": span.depth, **span.attrs}
                ),
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "format_version": FORMAT_VERSION},
    }


def write_chrome_trace(path: str, source: Union[Tracer, Sequence[Span]]) -> int:
    """Write a Chrome-trace file; returns the number of events written."""
    payload = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


def load_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Read a Chrome-trace file back into its complete-event list."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, list):  # bare JSON-array flavor
        events = payload
    else:
        events = payload.get("traceEvents", [])
    return [e for e in events if e.get("ph", "X") == "X"]


def metrics_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """Registry snapshot wrapped with a format header."""
    return {"format_version": FORMAT_VERSION, **registry.snapshot()}


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_to_dict(registry), fh, indent=2, sort_keys=True)


def load_metrics_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    for section in ("counters", "gauges", "histograms"):
        payload.setdefault(section, {})
    return payload
