"""Span-based tracing for the STEM+ROOT pipeline.

A :class:`Tracer` records *spans* — named, timed intervals with optional
attributes — via a context-manager API::

    with tracer.span("root.split", invocations=1024):
        ...

Spans nest: each thread keeps its own span stack, so a span opened while
another is active records that span as its parent.  Entering a span is
cheap (one ``perf_counter_ns`` call and a list append under no lock; the
shared finished-span list is the only synchronized structure), and the
module-level no-op span in :mod:`repro.obs` avoids even that when
observability is disabled.

Exceptions propagate through spans untouched; the span is still closed
and tagged ``status="error"`` with the exception type, so a trace of a
failed run shows exactly where it died.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NoopSpan", "NOOP_SPAN"]


def _now_us() -> float:
    return time.perf_counter_ns() / 1_000.0


@dataclass
class Span:
    """One finished (or in-flight) traced interval."""

    name: str
    category: str = "repro"
    #: Microseconds since the owning tracer's epoch.
    start_us: float = 0.0
    #: Duration in microseconds; set when the span closes.
    dur_us: float = 0.0
    span_id: int = 0
    parent_id: Optional[int] = None
    depth: int = 0
    thread_id: int = 0
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.category,
            "ts": self.start_us,
            "dur": self.dur_us,
            "tid": self.thread_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class NoopSpan:
    """Shared do-nothing span used whenever tracing is disabled.

    A single module-level instance is reused for every disabled
    ``obs.span(...)`` call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **_attrs) -> "NoopSpan":
        return self

    # Mirror the Span fields commonly read after a ``with`` block.
    name = ""
    dur_us = 0.0
    start_us = 0.0
    status = "ok"

    @property
    def attrs(self) -> Dict[str, Any]:
        # Fresh throwaway dict so disabled-path writes can't accumulate.
        return {}


NOOP_SPAN = NoopSpan()


class _SpanContext:
    """Context manager binding one live span to a tracer's thread stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span.start_us = _now_us() - self._tracer.epoch_us
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.dur_us = _now_us() - self._tracer.epoch_us - self.span.start_us
        if exc_type is not None:
            self.span.status = "error"
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)
        return False  # never swallow exceptions


class Tracer:
    """Thread-safe collector of nested spans."""

    def __init__(self) -> None:
        self.epoch_us = _now_us()
        #: Wall-clock time of the epoch, so spans recorded by *another*
        #: process (a parallel grid worker) can be rebased onto this
        #: tracer's timeline when merged via :meth:`ingest`.
        # Sanctioned: cross-process rebasing needs one shared wall clock;
        # the value never reaches results, keys, or checkpoints.
        self.epoch_wall = time.time()  # repro-lint: disable=wall-clock
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()
        self._next_id = 1

    # -- per-thread span stack ------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = stack[-1].depth + 1
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: out-of-order exit
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- public API -----------------------------------------------------------
    def span(self, name: str, category: str = "repro", **attrs: Any) -> _SpanContext:
        """Open a named span; use as ``with tracer.span("x") as sp: ...``."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return _SpanContext(
            self,
            Span(
                name=name,
                category=category,
                span_id=span_id,
                thread_id=threading.get_ident(),
                attrs=dict(attrs) if attrs else {},
            ),
        )

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> List[Span]:
        """Snapshot of all closed spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name."""
        return [s for s in self.finished() if s.name == name]

    def ingest(
        self,
        span_dicts: List[Dict[str, Any]],
        worker: str = "",
        epoch_wall: Optional[float] = None,
    ) -> int:
        """Merge spans exported by another tracer (``Span.to_dict`` form).

        Span ids are remapped onto this tracer's id space (parent links
        within the batch are preserved), each span is tagged with the
        originating ``worker``, and — when the remote tracer's
        ``epoch_wall`` is supplied — timestamps are rebased so the merged
        trace shows workers on one consistent timeline.  Returns the
        number of spans ingested.
        """
        offset_us = 0.0
        if epoch_wall is not None:
            offset_us = (epoch_wall - self.epoch_wall) * 1e6
        # Allocate all ids first: spans arrive in completion order, where
        # children precede their parents, so parent links can only be
        # remapped once every id is known.
        with self._lock:
            first_id = self._next_id
            self._next_id += len(span_dicts)
        id_map: Dict[int, int] = {}
        for offset, payload in enumerate(span_dicts):
            old_id = payload.get("id")
            if old_id is not None:
                id_map[int(old_id)] = first_id + offset
        ingested: List[Span] = []
        for offset, payload in enumerate(span_dicts):
            new_id = first_id + offset
            attrs = dict(payload.get("attrs") or {})
            if worker:
                attrs.setdefault("worker", worker)
            old_parent = payload.get("parent")
            ingested.append(
                Span(
                    name=str(payload.get("name", "")),
                    category=str(payload.get("cat", "repro")),
                    start_us=float(payload.get("ts", 0.0)) + offset_us,
                    dur_us=float(payload.get("dur", 0.0)),
                    span_id=new_id,
                    parent_id=(
                        id_map.get(int(old_parent)) if old_parent is not None else None
                    ),
                    depth=int(payload.get("depth", 0)),
                    thread_id=int(payload.get("tid", 0)),
                    status=str(payload.get("status", "ok")),
                    attrs=attrs,
                )
            )
        with self._lock:
            self._finished.extend(ingested)
        return len(ingested)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
        self.epoch_us = _now_us()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
