"""repro.obs — pipeline-wide observability: spans, metrics, events, reports.

The rest of the codebase talks to this module through cheap free
functions that consult one global session::

    from .. import obs

    with obs.span("root.split", invocations=n):
        ...
    obs.inc("root.splits_accepted")
    obs.observe("root.split_depth", depth)
    obs.log_event("sampler.plan_built", workload=name, samples=m)

Observability is **disabled by default**: every helper then reduces to a
global read plus an early return (``span`` hands back a shared no-op
context manager), so instrumented code costs nanoseconds per call site
and — crucially — results are bit-identical with or without tracing,
because nothing here ever touches an experiment RNG.

Enable it globally with :func:`configure` (the CLI does this when
``--trace-out``/``--metrics-out``/``REPRO_LOG_LEVEL`` are present) or
locally with the :func:`scoped` context manager, which restores the
previous state on exit — the pattern tests and benchmarks use.

``REPRO_LOG_LEVEL`` (debug/info/warning/error) sets the event-log
threshold; per-decision ROOT events are emitted at ``debug``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import IO, Iterator, Optional

from .events import LEVELS, EventLog, parse_level
from .export import (
    chrome_trace,
    load_chrome_trace,
    load_metrics_json,
    metrics_to_dict,
    write_chrome_trace,
    write_metrics_json,
)
from .flame import (
    CriticalStep,
    collapsed_stacks,
    critical_path,
    write_collapsed,
)
from .ledger import (
    DEFAULT_RUNS_DIR,
    RUN_SCHEMA_VERSION,
    RUNS_DIR_ENV,
    RunLedger,
    RunRecord,
    build_run_record,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import PHASES, PhaseSummary, RunReport, build_run_report, phase_of
from .resource import ResourceMonitor
from .slo import (
    SloBudgets,
    SloViolation,
    check_record,
    compare_records,
    load_slo_budgets,
)
from .tracer import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    # session management
    "ObsSession", "configure", "disable", "current", "is_enabled", "scoped",
    # hot-path helpers
    "span", "null_span", "inc", "set_gauge", "observe", "log_event",
    # building blocks
    "Tracer", "Span", "NoopSpan", "NOOP_SPAN",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "EventLog", "LEVELS", "parse_level",
    # exporters and reports
    "chrome_trace", "write_chrome_trace", "load_chrome_trace",
    "metrics_to_dict", "write_metrics_json", "load_metrics_json",
    "RunReport", "PhaseSummary", "build_run_report", "phase_of", "PHASES",
    # profiling: flames, critical path, resources
    "CriticalStep", "critical_path", "collapsed_stacks", "write_collapsed",
    "ResourceMonitor",
    # run ledger and SLOs
    "RunLedger", "RunRecord", "build_run_record",
    "RUN_SCHEMA_VERSION", "DEFAULT_RUNS_DIR", "RUNS_DIR_ENV",
    "SloBudgets", "SloViolation", "load_slo_budgets",
    "check_record", "compare_records",
]

#: Environment variable controlling the event-log level (and, in the CLI,
#: whether events stream to stderr).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"


class ObsSession:
    """One enabled observability context: tracer + metrics + event log."""

    def __init__(
        self,
        log_level: Optional[str] = None,
        event_stream: Optional[IO[str]] = None,
    ):
        if log_level is None:
            log_level = os.environ.get(LOG_LEVEL_ENV) or "info"
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog(level=log_level, stream=event_stream)
        #: (worker label, resource snapshot) pairs merged from pool
        #: workers, mirroring how worker spans merge into the tracer.
        self.worker_resources: list = []
        self._worker_lock = threading.Lock()

    def record_worker_resource(self, worker: str, snapshot) -> None:
        """Attach one worker's resource snapshot to this session."""
        if snapshot:
            with self._worker_lock:
                self.worker_resources.append((str(worker), dict(snapshot)))

    # -- convenience ---------------------------------------------------------
    def run_report(self) -> RunReport:
        return build_run_report(self.tracer, self.metrics)

    def write_trace(self, path: str) -> int:
        return write_chrome_trace(path, self.tracer)

    def write_metrics(self, path: str) -> None:
        write_metrics_json(path, self.metrics)

    def write_flame(self, path: str) -> int:
        """Write collapsed-stack lines for flamegraph.pl / speedscope."""
        return write_collapsed(path, self.tracer)


_session: Optional[ObsSession] = None
_session_lock = threading.Lock()


def configure(
    log_level: Optional[str] = None,
    event_stream: Optional[IO[str]] = None,
) -> ObsSession:
    """Enable observability globally; returns the new session."""
    global _session
    with _session_lock:
        _session = ObsSession(log_level=log_level, event_stream=event_stream)
        return _session


def disable() -> None:
    """Return to no-op mode (instrumentation stays in place, dormant)."""
    global _session
    with _session_lock:
        _session = None


def current() -> Optional[ObsSession]:
    """The active session, or ``None`` when observability is disabled."""
    return _session


def is_enabled() -> bool:
    return _session is not None


@contextmanager
def scoped(
    log_level: Optional[str] = None,
    event_stream: Optional[IO[str]] = None,
) -> Iterator[ObsSession]:
    """Temporarily enable observability; restores the prior state on exit."""
    global _session
    with _session_lock:
        previous = _session
        session = ObsSession(log_level=log_level, event_stream=event_stream)
        _session = session
    try:
        yield session
    finally:
        with _session_lock:
            _session = previous


# -- hot-path helpers ---------------------------------------------------------
def span(name: str, category: str = "repro", **attrs):
    """Open a trace span, or the shared no-op when disabled."""
    s = _session
    if s is None:
        return NOOP_SPAN
    return s.tracer.span(name, category=category, **attrs)


def null_span() -> NoopSpan:
    """The shared no-op span, for call sites that sometimes skip tracing."""
    return NOOP_SPAN


def inc(name: str, n: int = 1) -> None:
    """Increment a counter (no-op when disabled)."""
    s = _session
    if s is not None:
        s.metrics.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    s = _session
    if s is not None:
        s.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op when disabled)."""
    s = _session
    if s is not None:
        s.metrics.observe(name, value)


def log_event(event: str, level: str = "info", **fields) -> None:
    """Emit a structured event (no-op when disabled or below the level)."""
    s = _session
    if s is not None:
        s.events.emit(event, level=level, **fields)
