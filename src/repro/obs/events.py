"""Structured JSON-lines event log.

Every event is one JSON object per line::

    {"ts_us": 1234.5, "level": "info", "event": "sampler.plan_built",
     "workload": "bfs", "clusters": 12, "samples": 431}

Events below the configured level are dropped at the emit site.  Emitted
events are kept in memory (for tests and the run report) and, when a
stream is attached, written immediately — the CLI attaches ``sys.stderr``
when ``REPRO_LOG_LEVEL`` is set so decisions show up live.

The level ordering follows stdlib logging: ``debug < info < warning <
error``.  Per-split ROOT decisions are emitted at ``debug`` so a default
``info`` run stays quiet even on million-kernel workloads.
"""

from __future__ import annotations

import json
import math
import numbers
import threading
import time
from typing import Any, Dict, IO, List, Optional

__all__ = ["LEVELS", "parse_level", "EventLog"]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def parse_level(level: Optional[str], default: str = "info") -> int:
    """Numeric threshold for a level name (case-insensitive)."""
    if not level:
        level = default
    try:
        return LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other oddballs into JSON-native types."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        f = float(value)
        # Keep the log strict JSON: NaN/Infinity are not valid literals.
        return f if math.isfinite(f) else str(f)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class EventLog:
    """Collects structured events and optionally streams them as JSONL."""

    def __init__(
        self,
        level: Optional[str] = None,
        stream: Optional[IO[str]] = None,
    ):
        self.threshold = parse_level(level)
        self.stream = stream
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._epoch_ns = time.perf_counter_ns()

    def emit(self, event: str, level: str = "info", **fields: Any) -> bool:
        """Record one event; returns whether it passed the level filter."""
        severity = parse_level(level)
        if severity < self.threshold:
            return False
        record: Dict[str, Any] = {
            "ts_us": (time.perf_counter_ns() - self._epoch_ns) / 1_000.0,
            "level": level,
            "event": event,
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record)
        with self._lock:
            self._records.append(record)
            if self.stream is not None:
                self.stream.write(line + "\n")
        return True

    def records(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if event is not None:
            records = [r for r in records if r["event"] == event]
        return records

    def write_jsonl(self, path: str) -> int:
        """Dump every recorded event to ``path``; returns the line count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
