"""Metrics registry: counters, gauges, and histograms.

Three instrument kinds cover everything the pipeline needs to report:

* **Counter** — monotonically increasing totals
  (``root.splits_accepted``, ``sim.kernels_executed``);
* **Gauge** — last-written values (``sampler.leaf_clusters``);
* **Histogram** — distribution sketches with percentile queries
  (``root.split_depth``, ``sim.kernel_cycles``).

Histograms keep exact running ``count/sum/min/max`` plus a bounded
reservoir for percentiles, so observing millions of values costs O(1)
memory.  Reservoir replacement uses a private seeded SplitMix64 stream:
identical runs produce identical snapshots, and the sampler's NumPy
generators are never touched — observability can never perturb the
experiment's randomness.

Thread safety and merge determinism
-----------------------------------
Every write path (``inc``/``set``/``observe``) runs under a
per-instrument lock, so instrumented code may run in threads without
losing updates.  Cross-process merging is **order-independent**: a state
handed to :meth:`MetricsRegistry.merge_state` is parked and folded into
read-side views (``snapshot``/``export_state``/``names``) in a canonical
order — sorted by the state's own JSON — so a parent that merges worker
A before worker B produces byte-identical snapshots to one that merged
B before A, float summation included.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Reservoir capacity per histogram; plenty for stable p50/p90/p99.
_RESERVOIR_SIZE = 4096

_MASK64 = (1 << 64) - 1


class _SplitMix64:
    """Tiny deterministic PRNG for reservoir replacement.

    Implemented inline (Sebastiano Vigna's SplitMix64) so observability
    never touches the stdlib ``random`` module or any NumPy generator:
    the stream is a pure function of the seed, per histogram.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def randrange(self, n: int) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 31
        return z % n


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


def _empty_hist_state() -> Dict[str, object]:
    return {
        "count": 0,
        "sum": 0.0,
        "min": math.inf,
        "max": -math.inf,
        "reservoir": [],
    }


def _fold_hist_state(base: Dict[str, object], incoming: Dict[str, object]) -> None:
    """Fold one exported histogram state into ``base`` (in place).

    Exact moments (count/sum/min/max) merge exactly; the reservoir is
    extended with the other histogram's samples and truncated to
    capacity, which keeps percentile queries representative of both
    sources without replaying every observation.
    """
    count = int(incoming.get("count", 0))
    if count <= 0:
        return
    base["count"] = int(base["count"]) + count
    base["sum"] = float(base["sum"]) + float(incoming.get("sum", 0.0))
    base["min"] = min(float(base["min"]), float(incoming.get("min", math.inf)))
    base["max"] = max(float(base["max"]), float(incoming.get("max", -math.inf)))
    reservoir: List[float] = base["reservoir"]  # type: ignore[assignment]
    room = _RESERVOIR_SIZE - len(reservoir)
    if room > 0:
        incoming_res = list(incoming.get("reservoir") or [])
        reservoir.extend(float(v) for v in incoming_res[:room])


def _percentile_from(reservoir: List[float], p: float) -> float:
    """Nearest-rank percentile over a reservoir, ``p`` in [0, 100]."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not reservoir:
        return 0.0
    ordered = sorted(reservoir)
    rank = min(len(ordered) - 1, max(0, math.ceil(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def _hist_state_snapshot(state: Dict[str, object]) -> Dict[str, float]:
    if not state["count"]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}
    reservoir: List[float] = state["reservoir"]  # type: ignore[assignment]
    count = int(state["count"])
    total = float(state["sum"])
    return {
        "count": count,
        "sum": total,
        "min": float(state["min"]),
        "max": float(state["max"]),
        "mean": total / count,
        "p50": _percentile_from(reservoir, 50),
        "p90": _percentile_from(reservoir, 90),
        "p99": _percentile_from(reservoir, 99),
    }


class Histogram:
    """Distribution sketch with exact moments and sampled percentiles."""

    __slots__ = ("name", "count", "sum", "min", "max", "_reservoir", "_rng",
                 "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[float] = []
        # Deterministic and independent of every experiment RNG.
        self._rng = _SplitMix64(0xC0FFEE)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if len(self._reservoir) < _RESERVOIR_SIZE:
                self._reservoir.append(v)
            else:  # Vitter's algorithm R
                j = self._rng.randrange(self.count)
                if j < _RESERVOIR_SIZE:
                    self._reservoir[j] = v

    def _state(self) -> Dict[str, object]:
        """Mergeable state; caller must hold the lock or own the instance."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's exported state into this one."""
        with self._lock:
            base = self._state()
            _fold_hist_state(base, state)
            self.count = int(base["count"])
            self.sum = float(base["sum"])
            self.min = float(base["min"])
            self.max = float(base["max"])
            self._reservoir = base["reservoir"]  # type: ignore[assignment]

    def export_state(self) -> Dict[str, object]:
        """Snapshot plus the reservoir, for cross-process merging."""
        state: Dict[str, object] = dict(self.snapshot())
        with self._lock:
            state["reservoir"] = list(self._reservoir)
        return state

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir, ``p`` in [0, 100]."""
        with self._lock:
            reservoir = list(self._reservoir)
        return _percentile_from(reservoir, p)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return _hist_state_snapshot(self._state())


class MetricsRegistry:
    """Thread-safe, get-or-create home for every named instrument.

    Worker states handed to :meth:`merge_state` are *parked* rather than
    applied in place: every read-side view folds them in canonical
    (sorted-JSON) order, so merged snapshots do not depend on worker
    completion order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: (canonical key, state) pairs merged from other registries.
        self._pending: List[Tuple[str, Dict[str, Dict[str, object]]]] = []

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    # -- convenience write paths (used by the module-level helpers) -----------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side ------------------------------------------------------------
    def _folded(self) -> Tuple[
        Dict[str, int], Dict[str, float], Dict[str, Dict[str, object]]
    ]:
        """Live values with pending merged states folded canonically.

        Pending states are applied in sorted-canonical-key order, so the
        result — float sums included — is independent of the order in
        which ``merge_state`` was called.
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            pending = sorted(self._pending, key=lambda kv: kv[0])
            histograms = {
                n: h._state() for n, h in self._histograms.items()
            }
        for _, state in pending:
            for name, value in (state.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for name, value in (state.get("gauges") or {}).items():
                gauges[name] = float(value)
            for name, hist_state in (state.get("histograms") or {}).items():
                base = histograms.setdefault(name, _empty_hist_state())
                _fold_hist_state(base, hist_state)
        return counters, gauges, histograms

    def names(self, prefix: str = "") -> List[str]:
        counters, gauges, histograms = self._folded()
        all_names = list(counters) + list(gauges) + list(histograms)
        return sorted(n for n in all_names if n.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        counters, gauges, histograms = self._folded()
        return {
            "counters": {n: counters[n] for n in sorted(counters)},
            "gauges": {n: gauges[n] for n in sorted(gauges)},
            "histograms": {
                n: _hist_state_snapshot(histograms[n]) for n in sorted(histograms)
            },
        }

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """Mergeable registry state (snapshot + histogram reservoirs).

        The inverse of :meth:`merge_state`; parallel grid workers export
        this and the parent folds it into its own registry, so one run's
        metrics cover every process that contributed to it.  Pending
        merged states are folded in, so chained merges (worker →
        parent → grandparent) lose nothing.
        """
        counters, gauges, histograms = self._folded()
        exported_hists: Dict[str, Dict[str, object]] = {}
        for name in sorted(histograms):
            state = histograms[name]
            snap: Dict[str, object] = dict(_hist_state_snapshot(state))
            snap["reservoir"] = list(state["reservoir"])  # type: ignore[index]
            exported_hists[name] = snap
        return {
            "counters": {n: counters[n] for n in sorted(counters)},
            "gauges": {n: gauges[n] for n in sorted(gauges)},
            "histograms": exported_hists,
        }

    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Park another registry's exported state for canonical folding.

        The state becomes visible through every read-side view
        immediately; only the *fold order* is deferred, which is what
        makes merged snapshots independent of call order.
        """
        if not state:
            return
        key = json.dumps(state, sort_keys=True, default=str)
        with self._lock:
            self._pending.append((key, state))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._pending.clear()
