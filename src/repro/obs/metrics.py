"""Metrics registry: counters, gauges, and histograms.

Three instrument kinds cover everything the pipeline needs to report:

* **Counter** — monotonically increasing totals
  (``root.splits_accepted``, ``sim.kernels_executed``);
* **Gauge** — last-written values (``sampler.leaf_clusters``);
* **Histogram** — distribution sketches with percentile queries
  (``root.split_depth``, ``sim.kernel_cycles``).

Histograms keep exact running ``count/sum/min/max`` plus a bounded
reservoir for percentiles, so observing millions of values costs O(1)
memory.  Reservoir replacement uses a private seeded ``random.Random``:
identical runs produce identical snapshots, and the sampler's NumPy
generators are never touched — observability can never perturb the
experiment's randomness.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Dict, List

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Reservoir capacity per histogram; plenty for stable p50/p90/p99.
_RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Distribution sketch with exact moments and sampled percentiles."""

    __slots__ = ("name", "count", "sum", "min", "max", "_reservoir", "_rng")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[float] = []
        # Deterministic and independent of every experiment RNG.
        self._rng = random.Random(0xC0FFEE)

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self._reservoir) < _RESERVOIR_SIZE:
            self._reservoir.append(v)
        else:  # Vitter's algorithm R
            j = self._rng.randrange(self.count)
            if j < _RESERVOIR_SIZE:
                self._reservoir[j] = v

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's exported state into this one.

        Exact moments (count/sum/min/max) merge exactly; the reservoir is
        extended with the other histogram's samples and truncated to
        capacity, which keeps percentile queries representative of both
        sources without replaying every observation.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.sum += float(state.get("sum", 0.0))
        self.min = min(self.min, float(state.get("min", math.inf)))
        self.max = max(self.max, float(state.get("max", -math.inf)))
        incoming = list(state.get("reservoir") or [])
        room = _RESERVOIR_SIZE - len(self._reservoir)
        if room > 0:
            self._reservoir.extend(float(v) for v in incoming[:room])

    def export_state(self) -> Dict[str, object]:
        """Snapshot plus the reservoir, for cross-process merging."""
        state: Dict[str, object] = dict(self.snapshot())
        state["reservoir"] = list(self._reservoir)
        return state

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, max(0, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe, get-or-create home for every named instrument."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    # -- convenience write paths (used by the module-level helpers) -----------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side ------------------------------------------------------------
    def names(self, prefix: str = "") -> List[str]:
        with self._lock:
            all_names = (
                list(self._counters) + list(self._gauges) + list(self._histograms)
            )
        return sorted(n for n in all_names if n.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            histograms = {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """Mergeable registry state (snapshot + histogram reservoirs).

        The inverse of :meth:`merge_state`; parallel grid workers export
        this and the parent folds it into its own registry, so one run's
        metrics cover every process that contributed to it.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.export_state() for n, h in sorted(self._histograms.items())
                },
            }

    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's exported state into this one."""
        for name, value in (state.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (state.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, hist_state in (state.get("histograms") or {}).items():
            self.histogram(name).merge_state(hist_state)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
