"""SLO budgets over the run ledger: load, check, compare.

Budgets live in ``[tool.repro.slo]`` in pyproject.toml and constrain
what a :class:`~repro.obs.ledger.RunRecord` may report::

    [tool.repro.slo]
    max_wall_s = 120.0            # whole-run wall-clock ceiling
    max_rss_kb = 4194304          # peak RSS ceiling (parent or any worker)
    epsilon_margin = 1.5          # achieved ε <= requested ε * margin

    [tool.repro.slo.phase_budget_s]   # per-phase self-time ceilings
    simulate = 90.0

    [tool.repro.slo.cache_hit_rate_min]  # hit-rate floors
    sim_cache = 0.25

    [tool.repro.slo.metric_min]       # floors on top-level metrics
    warm_sweep_speedup = 1.2

    [tool.repro.slo.metric_max]       # ceilings on top-level metrics
    disabled_overhead = 0.02

    [tool.repro.slo.compare]          # regression tolerances
    wall_rel = 0.5                    # candidate wall <= baseline * 1.5
    rss_rel = 0.5
    hit_rate_abs = 0.10               # hit rate may drop at most 0.10
    metric_rel = 0.25

A budget only constrains what a record actually reports: a record with
no ``sim_cache`` traffic is not in breach of the ``sim_cache`` floor.
:func:`check_record` enforces the absolute budgets (the CI gate);
:func:`compare_records` diffs a candidate against a baseline record or
the ledger median under the ``compare`` tolerances, with per-metric
direction (time and RSS regress upward, hit rates and speedups regress
downward).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .ledger import RunRecord, iter_numeric_leaves

try:  # Python 3.11+
    import tomllib  # type: ignore[import]
except ImportError:  # pragma: no cover - depends on interpreter
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ImportError:
        tomllib = None

__all__ = [
    "CompareRow",
    "SloBudgets",
    "SloViolation",
    "check_record",
    "compare_records",
    "load_slo_budgets",
    "median_record_leaves",
    "render_compare",
    "render_violations",
]

#: Default regression tolerances for ``compare``.  ``min_time_s`` is a
#: noise floor: timing keys below it never breach — sub-50ms phases are
#: dominated by scheduler jitter, not code.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "wall_rel": 0.5,
    "rss_rel": 0.5,
    "hit_rate_abs": 0.10,
    "metric_rel": 0.25,
    "min_time_s": 0.05,
}


@dataclass
class SloBudgets:
    """Parsed ``[tool.repro.slo]`` budgets (all optional)."""

    max_wall_s: Optional[float] = None
    max_rss_kb: Optional[float] = None
    epsilon_margin: Optional[float] = None
    phase_budget_s: Dict[str, float] = field(default_factory=dict)
    cache_hit_rate_min: Dict[str, float] = field(default_factory=dict)
    metric_min: Dict[str, float] = field(default_factory=dict)
    metric_max: Dict[str, float] = field(default_factory=dict)
    tolerances: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TOLERANCES)
    )
    source: Optional[str] = None

    def is_empty(self) -> bool:
        return not (
            self.max_wall_s is not None
            or self.max_rss_kb is not None
            or self.epsilon_margin is not None
            or self.phase_budget_s
            or self.cache_hit_rate_min
            or self.metric_min
            or self.metric_max
        )


def load_slo_budgets(pyproject_path: Optional[str] = None) -> SloBudgets:
    """Budgets from ``[tool.repro.slo]``; empty budgets when absent."""
    path = pyproject_path or "pyproject.toml"
    if not os.path.exists(path):
        return SloBudgets(source=None)
    if tomllib is None:
        raise ReproError(
            "reading [tool.repro.slo] requires tomllib (Python 3.11+) or "
            "the tomli backport; neither is available"
        )
    with open(path, "rb") as fh:
        try:
            payload = tomllib.load(fh)
        except Exception as exc:
            raise ReproError(f"unparseable {path}: {exc}") from exc
    table = payload.get("tool", {}).get("repro", {}).get("slo", {})
    if not isinstance(table, dict):
        raise ReproError("[tool.repro.slo] must be a table")
    budgets = SloBudgets(source=path)
    if "max_wall_s" in table:
        budgets.max_wall_s = float(table["max_wall_s"])
    if "max_rss_kb" in table:
        budgets.max_rss_kb = float(table["max_rss_kb"])
    if "epsilon_margin" in table:
        budgets.epsilon_margin = float(table["epsilon_margin"])
    for key, target in (
        ("phase_budget_s", budgets.phase_budget_s),
        ("cache_hit_rate_min", budgets.cache_hit_rate_min),
        ("metric_min", budgets.metric_min),
        ("metric_max", budgets.metric_max),
    ):
        raw = table.get(key, {})
        if not isinstance(raw, dict):
            raise ReproError(f"[tool.repro.slo.{key}] must be a table")
        for name, value in raw.items():
            target[str(name)] = float(value)
    compare = table.get("compare", {})
    if not isinstance(compare, dict):
        raise ReproError("[tool.repro.slo.compare] must be a table")
    for name, value in compare.items():
        if name not in DEFAULT_TOLERANCES:
            raise ReproError(
                f"unknown [tool.repro.slo.compare] key '{name}' "
                f"(known: {', '.join(sorted(DEFAULT_TOLERANCES))})"
            )
        budgets.tolerances[str(name)] = float(value)
    return budgets


@dataclass
class SloViolation:
    """One breached budget, with enough context to read in CI logs."""

    run_id: str
    command: str
    key: str
    actual: float
    limit: float
    kind: str  # "max" | "min"

    def describe(self) -> str:
        relation = ">" if self.kind == "max" else "<"
        return (
            f"✗ {self.command} [{self.run_id[:8]}] {self.key}: "
            f"{self.actual:.6g} {relation} budget {self.limit:.6g}"
        )


def _record_peak_rss(record: RunRecord) -> Optional[float]:
    """Max over the parent resource snap and every worker snap."""
    peaks: List[float] = []
    resource = record.timing.get("resource")
    if isinstance(resource, dict) and "max_rss_kb" in resource:
        peaks.append(float(resource["max_rss_kb"]))
    for worker in record.timing.get("workers") or []:
        if isinstance(worker, dict) and "max_rss_kb" in worker:
            peaks.append(float(worker["max_rss_kb"]))
    return max(peaks) if peaks else None


def check_record(record: RunRecord, budgets: SloBudgets) -> List[SloViolation]:
    """Absolute-budget breaches for one record (empty list = within SLO)."""
    violations: List[SloViolation] = []

    def breach(key: str, actual: float, limit: float, kind: str) -> None:
        violations.append(SloViolation(
            run_id=record.run_id, command=record.command,
            key=key, actual=float(actual), limit=float(limit), kind=kind,
        ))

    wall = record.timing.get("wall_s")
    if budgets.max_wall_s is not None and isinstance(wall, (int, float)):
        if wall > budgets.max_wall_s:
            breach("timing.wall_s", wall, budgets.max_wall_s, "max")

    if budgets.max_rss_kb is not None:
        peak = _record_peak_rss(record)
        if peak is not None and peak > budgets.max_rss_kb:
            breach("timing.max_rss_kb", peak, budgets.max_rss_kb, "max")

    phases = record.timing.get("phases") or {}
    for phase, budget in sorted(budgets.phase_budget_s.items()):
        summary = phases.get(phase)
        if isinstance(summary, dict):
            self_s = float(summary.get("self_s", 0.0))
            if self_s > budget:
                breach(f"timing.phases.{phase}.self_s", self_s, budget, "max")

    caches = record.metrics.get("cache") or {}
    for cache, floor in sorted(budgets.cache_hit_rate_min.items()):
        stats = caches.get(cache)
        if isinstance(stats, dict) and "hit_rate" in stats:
            rate = float(stats["hit_rate"])
            if rate < floor:
                breach(f"metrics.cache.{cache}.hit_rate", rate, floor, "min")

    for metric, floor in sorted(budgets.metric_min.items()):
        value = record.metrics.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if value < floor:
                breach(f"metrics.{metric}", value, floor, "min")
    for metric, ceiling in sorted(budgets.metric_max.items()):
        value = record.metrics.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if value > ceiling:
                breach(f"metrics.{metric}", value, ceiling, "max")

    epsilon = record.metrics.get("epsilon") or {}
    if budgets.epsilon_margin is not None and isinstance(epsilon, dict):
        requested = epsilon.get("requested")
        achieved = epsilon.get("achieved")
        if isinstance(requested, (int, float)) and isinstance(achieved, (int, float)):
            limit = float(requested) * budgets.epsilon_margin
            if achieved > limit:
                breach("metrics.epsilon.achieved", achieved, limit, "max")

    return violations


def render_violations(violations: Sequence[SloViolation],
                      checked: int) -> str:
    lines = [v.describe() for v in violations]
    if violations:
        lines.append(
            f"{len(violations)} SLO breach(es) across {checked} record(s)"
        )
    else:
        lines.append(f"✓ {checked} record(s) within SLO budgets")
    return "\n".join(lines)


# -- comparison ---------------------------------------------------------------

#: (dotted-key classifier, tolerance key, direction) — direction "up"
#: means increases regress, "down" means decreases regress.
def _classify(key: str) -> Optional[Tuple[str, str]]:
    if key.endswith("hit_rate"):
        return ("hit_rate_abs", "down")
    if "rss" in key:
        return ("rss_rel", "up")
    if key.startswith("timing."):
        if key.endswith((".spans", ".seq", ".samples", ".timestamp")):
            return None
        return ("wall_rel", "up")
    if "speedup" in key:
        return ("metric_rel", "down")
    if key.startswith("metrics.") and key.endswith(
        ("_s", "_seconds", "overhead")
    ):
        return ("metric_rel", "up")
    return None


@dataclass
class CompareRow:
    """One numeric leaf diffed between baseline and candidate."""

    key: str
    baseline: float
    candidate: float
    tolerance_key: Optional[str]
    breach: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def delta_rel(self) -> Optional[float]:
        if self.baseline == 0:
            return None
        return self.delta / abs(self.baseline)


def comparable_leaves(record: RunRecord) -> Dict[str, float]:
    """Numeric leaves of the metrics + timing sections, dotted keys."""
    leaves: Dict[str, float] = {}
    for key, value in iter_numeric_leaves(record.metrics, "metrics"):
        leaves[key] = value
    for key, value in iter_numeric_leaves(record.timing, "timing"):
        leaves[key] = value
    return leaves


def median_record_leaves(records: Sequence[RunRecord]) -> Dict[str, float]:
    """Element-wise median of every numeric leaf across records.

    Only leaves present in **every** record participate — a metric that
    appears in some runs and not others has no meaningful median.
    """
    if not records:
        return {}
    per_record = [comparable_leaves(r) for r in records]
    common = set(per_record[0])
    for leaves in per_record[1:]:
        common &= set(leaves)
    medians: Dict[str, float] = {}
    for key in sorted(common):
        values = sorted(leaves[key] for leaves in per_record)
        mid = len(values) // 2
        if len(values) % 2:
            medians[key] = values[mid]
        else:
            medians[key] = (values[mid - 1] + values[mid]) / 2.0
    return medians


def compare_records(
    candidate: RunRecord,
    baseline: Dict[str, float],
    budgets: SloBudgets,
) -> List[CompareRow]:
    """Diff a candidate's leaves against baseline leaves with tolerances.

    ``baseline`` is either one record's :func:`comparable_leaves` or a
    :func:`median_record_leaves` aggregate.  Keys missing on either side
    are skipped; only classified keys (time, RSS, hit rates, speedups)
    can breach.
    """
    candidate_leaves = comparable_leaves(candidate)
    tolerances = budgets.tolerances
    rows: List[CompareRow] = []
    for key in sorted(set(baseline) & set(candidate_leaves)):
        base = baseline[key]
        cand = candidate_leaves[key]
        classified = _classify(key)
        breach = False
        tolerance_key: Optional[str] = None
        if classified is not None:
            tolerance_key, direction = classified
            tol = tolerances.get(tolerance_key, DEFAULT_TOLERANCES[tolerance_key])
            if tolerance_key.endswith("_abs"):
                if direction == "down":
                    breach = cand < base - tol
                else:
                    breach = cand > base + tol
            else:
                if direction == "up":
                    breach = cand > base * (1.0 + tol)
                else:
                    breach = cand < base * (1.0 - tol)
            if breach and tolerance_key == "wall_rel":
                floor = tolerances.get("min_time_s",
                                       DEFAULT_TOLERANCES["min_time_s"])
                if max(base, cand) < floor:
                    breach = False
        rows.append(CompareRow(key=key, baseline=base, candidate=cand,
                               tolerance_key=tolerance_key, breach=breach))
    return rows


def render_compare(rows: Sequence[CompareRow], only_breaches: bool = False,
                   label_base: str = "baseline",
                   label_cand: str = "candidate") -> str:
    """Readable diff table; breached rows are marked ✗."""
    shown = [r for r in rows if r.breach] if only_breaches else list(rows)
    if not shown:
        return "✓ no comparable differences" if not rows else "✓ within tolerances"
    width = max(len(r.key) for r in shown)
    lines = [
        f"{'':2}{'metric':<{width}} {label_base:>14} {label_cand:>14} {'Δ%':>8}"
    ]
    for row in shown:
        mark = "✗" if row.breach else ("·" if row.tolerance_key else " ")
        rel = row.delta_rel
        rel_text = f"{rel * 100.0:+.1f}" if rel is not None else "n/a"
        lines.append(
            f"{mark:<2}{row.key:<{width}} {row.baseline:>14.6g} "
            f"{row.candidate:>14.6g} {rel_text:>8}"
        )
    breaches = sum(r.breach for r in shown)
    if breaches:
        lines.append(f"{breaches} regression(s) beyond tolerance")
    return "\n".join(lines)
