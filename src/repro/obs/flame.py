"""Profile analysis over finished spans: self-time, critical path, flames.

Three views of the same span set, all derived from interval containment
(within one thread, a span whose interval lies inside another's is its
child):

* :func:`self_times` — per-span self time, the basis of every run-report
  table (a ``sampler.cluster`` span wrapping many ``root.split`` spans
  never double-counts its children);
* :func:`critical_path` — the chain of heaviest descendants from the
  longest root span, i.e. the spans that must shrink for the run to get
  faster;
* :func:`collapsed_stacks` / :func:`write_collapsed` — Brendan-Gregg
  collapsed-stack lines (``root;child;leaf <self_us>``), directly
  consumable by ``flamegraph.pl`` and https://www.speedscope.app.

All three accept the same sources as the run report: a live
:class:`~repro.obs.tracer.Tracer`, a span list, or events loaded back
from a Chrome-trace file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .tracer import Span, Tracer

__all__ = [
    "CriticalStep",
    "collapsed_stacks",
    "critical_path",
    "normalize_events",
    "self_times",
    "span_forest",
    "write_collapsed",
]

SpanSource = Union[Tracer, Sequence[Span], Sequence[Dict[str, Any]]]


def normalize_events(events_or_spans: SpanSource) -> List[Dict[str, Any]]:
    """Unify live spans and loaded Chrome-trace events into plain dicts."""
    if isinstance(events_or_spans, Tracer):
        events_or_spans = events_or_spans.finished()
    normalized = []
    for item in events_or_spans:
        if isinstance(item, Span):
            normalized.append(
                {"name": item.name, "ts": item.start_us, "dur": item.dur_us,
                 "tid": item.thread_id}
            )
        else:
            normalized.append(
                {"name": str(item.get("name", "?")),
                 "ts": float(item.get("ts", 0.0)),
                 "dur": float(item.get("dur", 0.0)),
                 "tid": item.get("tid", 0)}
            )
    return normalized


def span_forest(
    events: List[Dict[str, Any]],
) -> Tuple[List[Optional[int]], List[float]]:
    """Recover (parent index, self time) per event via containment.

    Within each thread, events sorted by ``(start asc, duration desc)``
    visit parents before children; a running stack of still-open
    ancestors then yields each event's innermost parent, and subtracting
    every child's duration from its parent leaves self time.
    """
    parents: List[Optional[int]] = [None] * len(events)
    self_us = [e["dur"] for e in events]
    by_tid: Dict[Any, List[int]] = {}
    for i, e in enumerate(events):
        by_tid.setdefault(e["tid"], []).append(i)
    for indices in by_tid.values():
        indices.sort(key=lambda i: (events[i]["ts"], -events[i]["dur"]))
        stack: List[int] = []
        for i in indices:
            start = events[i]["ts"]
            while stack and events[stack[-1]]["ts"] + events[stack[-1]]["dur"] <= start:
                stack.pop()
            if stack:
                parents[i] = stack[-1]
                self_us[stack[-1]] -= events[i]["dur"]
            stack.append(i)
    return parents, self_us


def self_times(events: List[Dict[str, Any]]) -> List[float]:
    """Per-event self time via interval containment within each thread."""
    return span_forest(events)[1]


@dataclass
class CriticalStep:
    """One span on the critical path, root first."""

    name: str
    dur_us: float
    self_us: float
    depth: int


def critical_path(source: SpanSource) -> List[CriticalStep]:
    """Heaviest-descendant chain from the longest root span.

    Deterministic under ties: the earlier-starting (then
    lexicographically smaller-named) span wins.
    """
    events = normalize_events(source)
    if not events:
        return []
    parents, self_us = span_forest(events)
    children: Dict[Optional[int], List[int]] = {}
    for i, parent in enumerate(parents):
        children.setdefault(parent, []).append(i)

    def heaviest(indices: List[int]) -> int:
        return min(
            indices,
            key=lambda i: (-events[i]["dur"], events[i]["ts"], events[i]["name"]),
        )

    path: List[CriticalStep] = []
    node: Optional[int] = heaviest(children.get(None, []))
    depth = 0
    while node is not None:
        e = events[node]
        path.append(CriticalStep(name=e["name"], dur_us=e["dur"],
                                 self_us=max(0.0, self_us[node]), depth=depth))
        kids = children.get(node)
        node = heaviest(kids) if kids else None
        depth += 1
    return path


def collapsed_stacks(source: SpanSource) -> Dict[str, float]:
    """Aggregate self time by full ancestor stack.

    Returns ``{"root;child;leaf": self_us}``.  Span names keep their
    dots (``sampler.build_plan``); stack frames are joined with ``;``
    per the collapsed-stack convention.
    """
    events = normalize_events(source)
    parents, self_us = span_forest(events)
    stacks: Dict[str, float] = {}
    for i, e in enumerate(events):
        frames = [e["name"]]
        parent = parents[i]
        while parent is not None:
            frames.append(events[parent]["name"])
            parent = parents[parent]
        key = ";".join(reversed(frames))
        stacks[key] = stacks.get(key, 0.0) + max(0.0, self_us[i])
    return stacks


def write_collapsed(path: str, source: SpanSource) -> int:
    """Write collapsed-stack lines (``stack value``); returns line count.

    Values are integer microseconds of self time; zero-valued stacks are
    dropped (flamegraph.pl ignores them anyway).  Lines are sorted so
    identical runs produce identical files.
    """
    stacks = collapsed_stacks(source)
    lines = []
    for key in sorted(stacks):
        value = int(round(stacks[key]))
        if value > 0:
            lines.append(f"{key} {value}")
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
