"""Preset GPU configurations for the GPUs named in the paper.

The presets track the headline specifications of the NVIDIA RTX 2080
(profiling machine), H100 (sampling source for the portability study) and
H200 (portability target with upgraded memory subsystem).  Absolute values
matter less than the *relationships* the experiments rely on: the H200
differs from the H100 mainly in memory capacity/bandwidth, which is what
makes the memory-intensive ``dlrm`` workload the worst portability case in
Figure 13.
"""

from __future__ import annotations

from typing import Dict, List

from .gpu_config import GPUConfig

__all__ = ["RTX_2080", "H100", "H200", "PRESETS", "dse_variants", "get_preset"]

RTX_2080 = GPUConfig(
    name="rtx2080",
    num_sms=46,
    clock_ghz=1.80,
    fp32_lanes=64,
    fp16_lanes=128,
    int_lanes=64,
    sfu_lanes=16,
    l1_kb_per_sm=64,
    l2_mb=4.0,
    dram_bandwidth_gbps=448.0,
    dram_latency_ns=350.0,
    l2_bandwidth_gbps=1800.0,
    l2_latency_ns=120.0,
    launch_overhead_us=3.0,
    jitter=0.25,
)

H100 = GPUConfig(
    name="h100",
    num_sms=132,
    clock_ghz=1.98,
    fp32_lanes=128,
    fp16_lanes=256,
    int_lanes=64,
    sfu_lanes=16,
    l1_kb_per_sm=256,
    l2_mb=50.0,
    dram_bandwidth_gbps=3350.0,
    dram_latency_ns=280.0,
    l2_bandwidth_gbps=12000.0,
    l2_latency_ns=100.0,
    launch_overhead_us=2.0,
    jitter=0.20,
)

H200 = GPUConfig(
    name="h200",
    num_sms=132,
    clock_ghz=1.98,
    fp32_lanes=128,
    fp16_lanes=256,
    int_lanes=64,
    sfu_lanes=16,
    l1_kb_per_sm=256,
    l2_mb=60.0,
    dram_bandwidth_gbps=4800.0,
    dram_latency_ns=250.0,
    l2_bandwidth_gbps=14000.0,
    l2_latency_ns=95.0,
    launch_overhead_us=2.0,
    jitter=0.20,
)

PRESETS: Dict[str, GPUConfig] = {cfg.name: cfg for cfg in (RTX_2080, H100, H200)}


def get_preset(name: str) -> GPUConfig:
    """Look up a preset by name, raising ``KeyError`` with the options."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown GPU preset {name!r}; available: {sorted(PRESETS)}") from None


def dse_variants(base: GPUConfig) -> List[GPUConfig]:
    """The five Table 4 design points: baseline, cache ×2/×½, SMs ×2/×½."""
    return [
        base,
        base.scaled(cache_scale=2.0),
        base.scaled(cache_scale=0.5),
        base.scaled(sm_scale=2.0),
        base.scaled(sm_scale=0.5),
    ]
