"""GPU hardware configuration.

:class:`GPUConfig` captures every hardware knob that the analytical timing
model (:mod:`repro.hardware.timing_model`) and the cycle-level simulator
(:mod:`repro.sim`) respond to.  The design-space-exploration experiments of
the paper (Table 4, Figure 12) vary exactly two of them — cache capacity
and SM count — via :meth:`GPUConfig.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUConfig"]


@dataclass(frozen=True)
class GPUConfig:
    """Parameters of a modeled GPU.

    Throughput-style fields use per-SM, per-cycle units so that scaling the
    SM count scales aggregate throughput the way real hardware does.
    """

    name: str
    num_sms: int = 46
    clock_ghz: float = 1.8
    #: Per-SM per-cycle arithmetic lanes by operation class.
    fp32_lanes: int = 64
    fp16_lanes: int = 128
    int_lanes: int = 64
    sfu_lanes: int = 16
    #: Memory system.
    l1_kb_per_sm: int = 64
    l2_mb: float = 4.0
    dram_bandwidth_gbps: float = 448.0
    dram_latency_ns: float = 350.0
    l2_bandwidth_gbps: float = 1800.0
    l2_latency_ns: float = 120.0
    cache_line_bytes: int = 128
    #: Fixed per-launch overhead (driver + dispatch), microseconds.
    launch_overhead_us: float = 3.0
    #: Hardware-level run-to-run noise magnitude (lognormal sigma scale).
    jitter: float = 0.25
    #: Maximum resident warps per SM (occupancy ceiling).
    max_warps_per_sm: int = 48
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int = 16

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if min(self.fp32_lanes, self.fp16_lanes, self.int_lanes, self.sfu_lanes) <= 0:
            raise ValueError("lane counts must be positive")
        if self.l1_kb_per_sm <= 0 or self.l2_mb <= 0:
            raise ValueError("cache sizes must be positive")
        if self.dram_bandwidth_gbps <= 0 or self.l2_bandwidth_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    # -- derived quantities -------------------------------------------------
    @property
    def l2_bytes(self) -> int:
        return int(self.l2_mb * (1 << 20))

    @property
    def l1_bytes_per_sm(self) -> int:
        return self.l1_kb_per_sm << 10

    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1e3

    def peak_ops_per_us(self, op_class: str) -> float:
        """Aggregate peak throughput (operations per microsecond)."""
        lanes = {
            "fp32": self.fp32_lanes,
            "fp16": self.fp16_lanes,
            "int": self.int_lanes,
            "sfu": self.sfu_lanes,
        }[op_class]
        return lanes * self.num_sms * self.cycles_per_us()

    # -- DSE helpers ----------------------------------------------------------
    def scaled(
        self, cache_scale: float = 1.0, sm_scale: float = 1.0, name: str = None
    ) -> "GPUConfig":
        """Derive a design-space-exploration variant.

        ``cache_scale`` multiplies both L1 and L2 capacities; ``sm_scale``
        multiplies the SM count (and hence aggregate compute throughput),
        matching the paper's Table 4 variants.
        """
        if cache_scale <= 0 or sm_scale <= 0:
            raise ValueError("scale factors must be positive")
        suffix = []
        if cache_scale != 1.0:
            suffix.append(f"cache_x{cache_scale:g}")
        if sm_scale != 1.0:
            suffix.append(f"sm_x{sm_scale:g}")
        new_name = name or (self.name + ("-" + "-".join(suffix) if suffix else ""))
        return replace(
            self,
            name=new_name,
            l1_kb_per_sm=max(1, int(round(self.l1_kb_per_sm * cache_scale))),
            l2_mb=self.l2_mb * cache_scale,
            num_sms=max(1, int(round(self.num_sms * sm_scale))),
        )
