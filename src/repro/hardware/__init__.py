"""Hardware models: GPU configurations and the analytical timing model."""

from .gpu_config import GPUConfig
from .presets import H100, H200, PRESETS, RTX_2080, dse_variants, get_preset
from .timing_model import KernelTimeBreakdown, TimingModel

__all__ = [
    "GPUConfig",
    "TimingModel",
    "KernelTimeBreakdown",
    "RTX_2080",
    "H100",
    "H200",
    "PRESETS",
    "get_preset",
    "dse_variants",
]
