"""Analytical GPU timing model — the reproduction's "real hardware".

The paper profiles workloads on physical GPUs with Nsight Systems and uses
the profiler's per-kernel cycle counts as ground truth whenever full
cycle-level simulation is intractable (Sec. 5, "Speedup and error of
sampled simulations").  With no GPU available, this module supplies the
equivalent: a roofline-style analytical model that maps one kernel
invocation (spec + runtime context) to an execution time, plus a
multiplicative noise term.

The model is deliberately built around the two phenomena STEM+ROOT
exploits and the baselines miss:

* different :class:`~repro.workloads.kernel.LaunchContext` values for the
  same kernel shift the deterministic part of the time — producing the
  multi-peak histograms of Figure 1; and
* memory-bound kernels with poor locality receive a larger lognormal
  jitter — producing the wide distributions of Figure 1.

All evaluation paths (full "hardware" runs, sampled estimates, profiling)
read from the same per-invocation time array, exactly as the paper's
methodology compares a sampled estimate against profiler cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..workloads.kernel import KernelSpec
from ..workloads.workload import Workload
from .gpu_config import GPUConfig

__all__ = ["TimingModel", "KernelTimeBreakdown"]


@dataclass(frozen=True)
class KernelTimeBreakdown:
    """Deterministic time components of one invocation, microseconds."""

    compute_us: float
    memory_us: float
    overhead_us: float

    @property
    def total_us(self) -> float:
        """Roofline combination: overlap all but 25% of the minor term."""
        major = max(self.compute_us, self.memory_us)
        minor = min(self.compute_us, self.memory_us)
        return self.overhead_us + major + 0.25 * minor


class TimingModel:
    """Maps kernel invocations to execution times on a :class:`GPUConfig`.

    The public entry point is :meth:`execution_times`, which evaluates the
    whole workload vectorially; :meth:`breakdown` exposes the deterministic
    components of one invocation for inspection and tests.
    """

    def __init__(self, config: GPUConfig):
        self.config = config
        self._spec_cache: Dict[int, Dict[str, float]] = {}

    # -- per-spec nominal quantities -------------------------------------
    def _spec_features(self, spec: KernelSpec) -> Dict[str, float]:
        """Nominal (work_scale == 1) timing features of a spec, cached."""
        key = id(spec)
        cached = self._spec_cache.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        threads = spec.num_threads()
        mix = spec.mix

        compute_us = (
            mix.fp32 * threads / cfg.peak_ops_per_us("fp32")
            + mix.fp16 * threads / cfg.peak_ops_per_us("fp16")
            + mix.int_alu * threads / cfg.peak_ops_per_us("int")
            + mix.sfu * threads / cfg.peak_ops_per_us("sfu")
        )
        # Shared memory and branches are cheap but not free: fold them into
        # the compute side at integer-pipe throughput.
        compute_us += (
            (mix.shared_ops() + mix.branch) * threads / cfg.peak_ops_per_us("int")
        )
        # Occupancy penalty: launches too small to fill the GPU cannot hit
        # peak throughput.
        resident_capacity = cfg.num_sms * cfg.max_warps_per_sm
        occupancy = min(1.0, spec.num_warps() / resident_capacity)
        compute_us /= max(occupancy, 1.0 / cfg.max_warps_per_sm)

        bytes_nominal = mix.memory_ops() * threads * 4.0 / spec.memory.coalescing_factor()
        fit = min(1.0, (cfg.l2_bytes / spec.memory.working_set_bytes) ** 0.5)
        random_penalty = 1.0 - 0.7 * spec.memory.random_fraction
        features = {
            "compute_us": compute_us,
            "bytes_nominal": bytes_nominal,
            "cache_fit": fit,
            "random_penalty": random_penalty,
            "memory_boundedness": spec.memory_boundedness,
        }
        self._spec_cache[key] = features
        return features

    def _memory_us(
        self, bytes_moved: np.ndarray, locality: np.ndarray, fit: np.ndarray, random_penalty: np.ndarray
    ) -> np.ndarray:
        """Memory time for given traffic and per-invocation locality."""
        cfg = self.config
        hit_rate = np.clip(locality * fit, 0.0, 0.98)
        l2_bytes = bytes_moved * hit_rate
        dram_bytes = bytes_moved * (1.0 - hit_rate)
        # GB/s == bytes/ns; convert to microseconds.
        l2_us = l2_bytes / (cfg.l2_bandwidth_gbps * 1e3)
        dram_us = dram_bytes / (cfg.dram_bandwidth_gbps * random_penalty * 1e3)
        latency_us = cfg.dram_latency_ns * 1e-3 * (1.0 - hit_rate)
        return l2_us + dram_us + latency_us

    # -- public API -------------------------------------------------------------
    def breakdown(
        self,
        spec: KernelSpec,
        work_scale: float = 1.0,
        locality: float = 0.5,
        efficiency: float = 1.0,
    ) -> KernelTimeBreakdown:
        """Deterministic timing components of one invocation."""
        f = self._spec_features(spec)
        mem = self._memory_us(
            np.asarray([f["bytes_nominal"] * work_scale]),
            np.asarray([locality]),
            np.asarray([f["cache_fit"]]),
            np.asarray([f["random_penalty"]]),
        )[0]
        return KernelTimeBreakdown(
            compute_us=f["compute_us"] * work_scale / efficiency,
            memory_us=float(mem),
            overhead_us=self.config.launch_overhead_us,
        )

    def jitter_sigma(self, spec: KernelSpec, locality: np.ndarray) -> np.ndarray:
        """Lognormal sigma of the noise term for invocations of ``spec``.

        Memory-bound kernels with poor locality fluctuate the most — the
        paper's "runtime jitter ... due to the kernel's memory-bound
        nature" (Sec. 2.2).
        """
        base = self.config.jitter * (0.15 + 0.85 * spec.memory_boundedness)
        return base * (1.2 - np.asarray(locality))

    def execution_times(
        self, workload: Workload, rng: Optional[np.random.Generator] = None, seed: int = 0
    ) -> np.ndarray:
        """Per-invocation execution times (microseconds) for a workload.

        ``rng`` (or ``seed``) controls the hardware noise; the deterministic
        component is a pure function of spec, context and hardware config.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        n = len(workload)
        times = np.empty(n, dtype=np.float64)
        spec_ids = workload.spec_ids
        for sid, spec in enumerate(workload.specs):
            mask = spec_ids == sid
            count = int(mask.sum())
            if not count:
                continue
            f = self._spec_features(spec)
            scales = workload.work_scales[mask]
            locality = workload.localities[mask]
            compute = f["compute_us"] * scales / workload.efficiencies[mask]
            memory = self._memory_us(
                f["bytes_nominal"] * scales,
                locality,
                np.full(count, f["cache_fit"]),
                np.full(count, f["random_penalty"]),
            )
            major = np.maximum(compute, memory)
            minor = np.minimum(compute, memory)
            deterministic = self.config.launch_overhead_us + major + 0.25 * minor
            sigma = self.jitter_sigma(spec, locality)
            noise = np.exp(rng.standard_normal(count) * sigma - 0.5 * sigma**2)
            times[mask] = deterministic * noise
        return times

    def total_time_us(self, workload: Workload, seed: int = 0) -> float:
        """Ground-truth total execution time of the full workload."""
        return float(self.execution_times(workload, seed=seed).sum())
