"""Process-stable seed derivation from text.

``hash(str)`` is salted per interpreter process (``PYTHONHASHSEED``),
so a seed like ``hash(name) ^ base_seed`` draws *different* values in
every run and in every pool worker started under a different salt — the
exact failure mode the ``seed-flow`` analysis rule exists to catch.
These helpers are the sanctioned replacement: same text, same seed, in
every process, forever.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_text_seed"]

#: Knuth's multiplicative constant, used to decorrelate the numeric salt
#: from the text digest (same mixing the call sites already used).
_GOLDEN = 0x9E3779B9


def stable_text_seed(text: str, salt: int = 0) -> int:
    """A 32-bit seed derived from ``text`` and ``salt``, process-stable.

    CRC-32 of the UTF-8 text, mixed with the salt; unlike ``hash()``
    it does not depend on the interpreter's per-process hash salt.
    """
    digest = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return digest ^ ((salt * _GOLDEN) & 0xFFFFFFFF)
