"""Parallel grid execution engine.

Three layers, each useful on its own:

* :class:`ProfileCache` — content-addressed on-disk store (plus an
  in-process LRU) for collected nsys profiles, keyed by workload
  fingerprint × GPU × seed, with atomic writes safe under concurrent
  workers;
* :func:`run_tasks` — a generic ordered process-pool executor that
  merges worker observability (spans, metrics) back into the parent;
* :mod:`~repro.parallel.supervisor` — the self-healing layer under
  pooled ``run_tasks``: pool-rebuild on worker death, deterministic
  re-dispatch, poison-task quarantine, heartbeat stall detection and
  speculative straggler re-execution
  (:class:`SupervisionPolicy` / :class:`SupervisionReport`);
* :func:`execute_grid` — the experiment-grid fan-out built on all of
  the above, guaranteed bit-identical to the sequential runner (see
  :mod:`repro.parallel.grid` for the determinism contract).

Everything is opt-in: ``jobs=1`` (the default throughout the code base)
never touches a process pool, and no cache is consulted unless one is
passed explicitly or via ``--profile-cache`` on the CLI.
"""

from ..errors import GridExecutionError, PoisonedTaskError, WorkerCrashError
from .executor import resolve_jobs, run_tasks
from .grid import GridTask, execute_grid
from .profile_cache import ProfileCache
from .supervisor import SupervisionPolicy, SupervisionReport, supervise_tasks

__all__ = [
    "ProfileCache",
    "GridTask",
    "execute_grid",
    "resolve_jobs",
    "run_tasks",
    "SupervisionPolicy",
    "SupervisionReport",
    "supervise_tasks",
    "WorkerCrashError",
    "PoisonedTaskError",
    "GridExecutionError",
]
