"""Process-pool task execution with ordered results and obs merging.

The building block under the parallel grid runner: hand it a picklable
module-level ``worker`` function and a list of payloads, and it fans the
payloads across a process pool, returning results **in payload order**
regardless of completion order.  ``jobs=1`` (the default everywhere)
bypasses the pool entirely and runs the exact sequential code path, so
parallelism is strictly opt-in.

Two properties the experiment grids rely on:

* **Determinism** — workers receive self-contained payloads whose
  randomness derives from per-payload seeds, never from shared mutable
  state, so any worker count or completion order produces the same
  values.  The executor preserves submission order on the way out.
* **Observability** — when the parent process has :mod:`repro.obs`
  enabled, each worker runs its payload under a scoped obs session and
  ships its spans and metrics back with the result; the parent merges
  them (spans rebased onto the parent timeline and tagged with the
  worker label) so one trace covers the whole fan-out.

Workers are processes, not threads: the simulators and samplers are
CPU-bound NumPy/Python code, so threads would serialize on the GIL.
The pool uses the ``fork`` start method where available (cheap, and
payloads stay picklable anyway so ``spawn`` platforms work too).

Pooled runs are dispatched through the self-healing supervisor by
default (:mod:`repro.parallel.supervisor`): a SIGKILLed or OOMed worker
rebuilds the pool and re-dispatches unfinished tasks instead of sinking
the run, and tasks that keep killing workers are quarantined with a
typed error.  ``SupervisionPolicy(enabled=False)`` restores the legacy
single-dispatch pool (kept for the overhead benchmark).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import obs
from ..errors import WorkerCrashError

__all__ = ["resolve_jobs", "run_tasks"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or int(jobs) <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _invoke(worker: Callable[[Any], Any], payload: Any, capture_obs: bool) -> Dict:
    """Run one payload in the worker process, capturing obs if asked."""
    if not capture_obs:
        return {"value": worker(payload)}
    with obs.scoped() as session:
        with obs.ResourceMonitor() as monitor:
            value = worker(payload)
        return {
            "value": value,
            "spans": [s.to_dict() for s in session.tracer.finished()],
            "metrics": session.metrics.export_state(),
            "epoch_wall": session.tracer.epoch_wall,
            "resource": monitor.snapshot(),
        }


def _merge_worker_obs(result: Dict, worker_label: str) -> None:
    session = obs.current()
    if session is None or "spans" not in result:
        return
    session.tracer.ingest(
        result["spans"], worker=worker_label, epoch_wall=result.get("epoch_wall")
    )
    session.metrics.merge_state(result.get("metrics") or {})
    session.record_worker_resource(worker_label, result.get("resource"))


def run_tasks(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = 1,
    on_result: Optional[Callable[[int, Any], None]] = None,
    label: str = "parallel",
    policy: Optional["SupervisionPolicy"] = None,
    fault_plan: Optional[object] = None,
    report: Optional["SupervisionReport"] = None,
) -> List[Any]:
    """Run ``worker`` over ``payloads``; results come back in payload order.

    ``worker`` must be a module-level function (picklable by qualified
    name) and every payload must be picklable.  ``on_result(index,
    value)`` fires as each payload finishes — in *completion* order under
    a pool — which is the hook the grid runner uses to checkpoint cells
    the moment they complete.  On a worker exception the first failure
    propagates after pending work is cancelled; results delivered before
    the failure have already been passed to ``on_result``.

    Pooled execution is **supervised** by default (see
    :mod:`repro.parallel.supervisor`): worker death rebuilds the pool
    and re-dispatches only unfinished tasks (purity keeps retried
    results bit-identical), a task that keeps killing workers is
    quarantined with a typed
    :class:`~repro.errors.PoisonedTaskError` — recorded in ``report``
    when one is passed, raised otherwise — and ``policy`` opts into
    heartbeat stall detection and speculative re-execution.  Pass
    ``policy=SupervisionPolicy(enabled=False)`` for the legacy
    unsupervised pool, where pool breakage raises a typed
    :class:`~repro.errors.WorkerCrashError` naming the in-flight
    payload indices.  ``fault_plan`` (a
    :class:`~repro.resilience.FaultPlan` with process-level rates)
    injects real worker kills/stalls inside the pool — it never reaches
    the sequential path, which by definition cannot lose a worker.
    """
    jobs = resolve_jobs(jobs)
    results: List[Any] = [None] * len(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            value = worker(payload)
            results[index] = value
            if on_result is not None:
                on_result(index, value)
        return results

    capture = obs.is_enabled()
    obs.log_event(f"{label}.fanout", tasks=len(payloads), jobs=jobs)
    from .supervisor import SupervisionPolicy, supervise_tasks

    if policy is None:
        policy = SupervisionPolicy()
    if policy.enabled:
        results, _ = supervise_tasks(
            worker,
            payloads,
            jobs=jobs,
            on_result=on_result,
            label=label,
            policy=policy,
            capture_obs=capture,
            fault_plan=fault_plan,
            report=report,
        )
        return results

    executor = ProcessPoolExecutor(
        max_workers=min(jobs, len(payloads)), mp_context=_pool_context()
    )
    try:
        future_index = {
            executor.submit(_invoke, worker, payload, capture): index
            for index, payload in enumerate(payloads)
        }
        pending = set(future_index)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = future_index[future]
                try:
                    wrapped = future.result()  # re-raises worker exceptions
                except BrokenProcessPool as err:
                    unfinished = sorted({index} | {future_index[f] for f in pending})
                    raise WorkerCrashError(
                        f"{label}: a worker process died unsupervised "
                        f"(payload index {index} observed the breakage; "
                        f"unfinished indices: {unfinished}); supervised "
                        "execution (the default policy) recovers from this "
                        "automatically",
                        indices=unfinished,
                    ) from err
                _merge_worker_obs(wrapped, worker_label=f"{label}-{index}")
                results[index] = wrapped["value"]
                obs.inc(f"{label}.tasks_completed")
                if on_result is not None:
                    on_result(index, wrapped["value"])
    finally:
        # cancel_futures keeps a failure (or Ctrl-C) from waiting out the
        # whole remaining grid before the exception surfaces.
        executor.shutdown(wait=True, cancel_futures=True)
    return results
