"""Parallel experiment-grid execution with bit-identical results.

The (workload × method × repetition) grids behind every table and figure
are embarrassingly parallel *above* the repetition: each repetition's
cells share one profile store (so a workload is profiled once per
repetition, exactly like the sequential runner), while different
repetitions and workloads share nothing but the config.  The unit of
parallelism is therefore the **(workload, repetition) task** — never a
single method cell, which would multiply profiling cost, and never a
whole workload, which would under-utilize small grids.

Determinism contract
--------------------
``execute_grid(jobs=N)`` returns rows **bit-identical** to the
sequential runner, by construction rather than by tolerance:

* every cell's randomness derives from
  :func:`repro.experiments.runner.repetition_seed`, a pure function of
  the config — never from shared state or collection order;
* workers and the sequential runner drain the *same*
  :func:`~repro.experiments.runner.compute_cell_rows` generator, so
  there is no second implementation to drift;
* the executor reorders nothing: results are reassembled in grid order
  (workload → repetition → method) no matter which worker finished
  first.

Checkpoints are written from the parent as each task completes, so a
killed parallel grid resumes exactly like a killed sequential one — and
either mode can resume the other's checkpoint file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..analysis import detsan
from ..errors import GridExecutionError
from .executor import resolve_jobs, run_tasks
from .profile_cache import ProfileCache
from .supervisor import SupervisionPolicy, SupervisionReport

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..experiments.runner import ExperimentConfig, ResultRow
    from ..workloads.workload import Workload

__all__ = ["GridTask", "execute_grid"]


@dataclass
class GridTask:
    """One worker payload: the missing cells of a (workload, repetition).

    Self-contained and picklable — workers receive everything they need
    and share no mutable state, which is what lets any worker count and
    completion order produce identical rows.  The profile cache travels
    as its ``root`` path (each process opens its own handle onto the
    shared on-disk store).
    """

    workload: "Workload"
    rep: int
    methods: List[str]
    config: "ExperimentConfig"
    ground_truth: Optional[Callable] = None
    cache_root: Optional[str] = None
    cache_memory_entries: int = 64


def _grid_task_worker(task: GridTask) -> List[Tuple[str, Dict[str, object]]]:
    """Compute one task's rows; runs inside a worker process.

    Returns ``(method, row_dict)`` pairs — plain dicts, so the parent
    can checkpoint them without re-serializing.
    """
    from ..experiments import runner  # lazy: keeps import graph acyclic

    cache = (
        ProfileCache(task.cache_root, max_memory_entries=task.cache_memory_entries)
        if task.cache_root
        else None
    )
    plan = task.config.fault_plan
    if cache is not None and plan is not None and plan.corrupts_cache:
        from ..resilience.faults import FaultInjector

        # Chaos-testing hook: freshly stored entries get their on-disk
        # bytes flipped, exercising checksum quarantine on later reads.
        cache.fault_injector = FaultInjector(plan)
    with obs.span(
        "parallel.grid_task", workload=task.workload.name, repetition=task.rep
    ):
        return [
            (method, row.as_dict())
            for method, row in runner.compute_cell_rows(
                task.workload,
                task.config,
                task.methods,
                task.rep,
                ground_truth=task.ground_truth,
                profile_cache=cache,
            )
        ]


def execute_grid(
    workloads: Iterable["Workload"],
    config: "ExperimentConfig",
    methods: Optional[Iterable[str]] = None,
    ground_truth: Optional[Callable] = None,
    checkpoint=None,
    profile_cache: Optional[ProfileCache] = None,
    jobs: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List["ResultRow"]:
    """Run an experiment grid across worker processes.

    The parallel twin of :func:`repro.experiments.runner.run_suite`'s
    inner loop: checkpointed cells are replayed up front, the remaining
    cells are grouped into (workload, repetition) tasks and fanned across
    ``jobs`` processes, and rows come back in exact grid order.

    ``ground_truth`` must be picklable (a module-level function) since it
    rides inside worker payloads.

    Execution is supervised (``policy``, default
    :class:`~repro.parallel.SupervisionPolicy`): a killed worker
    rebuilds the pool and re-dispatches unfinished tasks with
    bit-identical results, and a task that keeps killing workers is
    quarantined — its cells come back as non-feasible rows flagged
    ``quarantined`` (never checkpointed, so a resume retries them) while
    the rest of the grid completes normally.  On an *unrecoverable*
    failure every completed cell is flushed to the checkpoint before a
    :class:`~repro.errors.GridExecutionError` carrying the completed
    cell keys propagates with the original failure as its cause.
    """
    from ..experiments import runner  # lazy: keeps import graph acyclic

    workload_list = list(workloads)
    method_list = list(methods or runner.METHODS)
    checkpoint = runner._as_checkpoint(checkpoint, config)
    jobs = resolve_jobs(jobs)

    # Replay checkpointed cells; group what's left by (workload, rep).
    stored: Dict[Tuple[int, str, int], "runner.ResultRow"] = {}
    missing: Dict[Tuple[int, int], List[str]] = {}
    for wl_idx, workload in enumerate(workload_list):
        for rep in range(config.repetitions):
            for method in method_list:
                cell = (
                    checkpoint.get(workload.suite, workload.name, method, rep)
                    if checkpoint is not None
                    else None
                )
                if cell is not None:
                    stored[(wl_idx, method, rep)] = runner.ResultRow.from_dict(cell)
                    obs.inc("resilience.checkpoint_cells_replayed")
                else:
                    missing.setdefault((wl_idx, rep), []).append(method)

    task_keys = list(missing.keys())
    payloads = [
        GridTask(
            workload=workload_list[wl_idx],
            rep=rep,
            methods=missing[(wl_idx, rep)],
            config=config,
            ground_truth=ground_truth,
            cache_root=profile_cache.root if profile_cache is not None else None,
            cache_memory_entries=(
                profile_cache.max_memory_entries if profile_cache is not None else 64
            ),
        )
        for wl_idx, rep in task_keys
    ]

    computed: Dict[Tuple[int, str, int], "runner.ResultRow"] = {}

    def on_result(index: int, cells: List[Tuple[str, Dict[str, object]]]) -> None:
        # Fires in completion order; checkpoint each task the moment it
        # lands so a killed parallel grid loses only in-flight tasks.
        wl_idx, rep = task_keys[index]
        workload = workload_list[wl_idx]
        for method, row_dict in cells:
            computed[(wl_idx, method, rep)] = runner.ResultRow.from_dict(row_dict)
            if detsan.is_enabled():
                # Parent-side sync point: rows received from workers use
                # the same key (and serialized form) as the sequential
                # runner's, so sequential-vs-jobs>1 cross-checks happen
                # here regardless of completion order.
                detsan.record(
                    f"grid.row|{workload.suite}|{workload.name}"
                    f"|{method}|rep={rep}",
                    row_dict,
                )
            if checkpoint is not None:
                checkpoint.record(
                    workload.suite, workload.name, method, rep, row_dict
                )

    def _completed_cell_keys() -> List[Tuple[str, str, str, int]]:
        keys = []
        for (wl_idx, method, rep), row in computed.items():
            workload = workload_list[wl_idx]
            keys.append((workload.suite, workload.name, method, rep))
        return sorted(keys)

    fault_plan = config.fault_plan
    report = SupervisionReport()
    with obs.span("parallel.execute_grid", tasks=len(payloads), jobs=jobs):
        try:
            run_tasks(
                _grid_task_worker,
                payloads,
                jobs=jobs,
                on_result=on_result,
                label="parallel.grid",
                policy=policy,
                fault_plan=(
                    fault_plan
                    if fault_plan is not None and fault_plan.faults_workers
                    else None
                ),
                report=report,
            )
        except Exception as err:
            # Unrecoverable (a genuine worker exception, or pool death
            # beyond the rebuild budget): salvage what completed.  Every
            # finished cell is already in the checkpoint via on_result;
            # force the pending fsync so the file survives the caller.
            if checkpoint is not None:
                checkpoint.flush()
            completed = _completed_cell_keys()
            raise GridExecutionError(
                f"parallel grid failed with {len(completed)} cells completed "
                f"(flushed to checkpoint: {checkpoint is not None}): {err}",
                completed_cells=completed,
            ) from err

    # Tasks the supervisor quarantined come back as explicit non-feasible
    # rows (never checkpointed, so a resume retries them) and are
    # enumerated in the obs stream for the run ledger.
    quarantined: Dict[Tuple[int, str, int], "runner.ResultRow"] = {}
    for poisoned in report.poisoned:
        wl_idx, rep = task_keys[poisoned.index]
        workload = workload_list[wl_idx]
        for method in missing[(wl_idx, rep)]:
            quarantined[(wl_idx, method, rep)] = runner._quarantined_row(
                workload, method, rep
            )
            obs.inc("parallel.grid.cells_quarantined")
            obs.log_event(
                "parallel.grid.cell_quarantined",
                level="error",
                suite=workload.suite,
                workload=workload.name,
                method=method,
                repetition=rep,
                kills=poisoned.kills,
            )

    # Reassemble in grid order — identical to the sequential runner's.
    rows: List["runner.ResultRow"] = []
    for wl_idx, workload in enumerate(workload_list):
        for rep in range(config.repetitions):
            for method in method_list:
                key = (wl_idx, method, rep)
                if key in stored:
                    rows.append(stored[key])
                elif key in quarantined:
                    rows.append(quarantined[key])
                else:
                    rows.append(computed[key])
    return rows
