"""Self-healing supervision for the process-pool executor.

A stock :class:`~concurrent.futures.ProcessPoolExecutor` treats worker
death as fatal: one SIGKILL/OOM breaks the pool, every in-flight future
raises ``BrokenProcessPool``, and the whole sweep dies with it.  The
supervisor turns worker death into a scheduling event:

* **Detection** — pool breakage surfaces through the in-flight futures;
  wedged (stalled) workers are caught via heartbeat files each task
  stamps at start, compared against ``heartbeat_timeout`` on a
  monotonic clock, and killed explicitly.
* **Recovery** — the pool is rebuilt and only unfinished tasks are
  re-dispatched.  Tasks are pure functions of their payload, so a
  retried task returns bit-identical results; completed results are
  never recomputed or reordered.
* **Attribution** — breakage with several tasks in flight cannot name a
  culprit, so all of them become *suspects* and are probed one at a
  time in a fresh pool.  Only a task that breaks the pool while it is
  the sole task in flight is charged a kill; after
  ``max_task_kills`` such solo kills it is quarantined with a typed
  :class:`~repro.errors.PoisonedTaskError` instead of sinking the
  sweep.  Innocent bystanders can never be quarantined.
* **Speculation** — optionally, once the dispatch queue drains and
  worker slots idle, the slowest outstanding tasks are duplicated once;
  the first copy to finish wins.  Purity makes duplicates bit-identical
  (late losers are compared and counted, never used).

The dispatch window is bounded at the worker count, so at most ``jobs``
tasks are ever exposed to a pool breakage and re-dispatch stays cheap.

Process-level fault injection (``worker_kill_rate`` /
``worker_stall_rate`` on a :class:`~repro.resilience.FaultPlan`) rides
into the worker wrapper: the injected SIGKILL is real, which is what
makes the chaos tests honest.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import PoisonedTaskError, WorkerCrashError

__all__ = [
    "SupervisionPolicy",
    "SupervisionReport",
    "PoisonedTask",
    "supervise_tasks",
]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for the supervised dispatch loop."""

    #: ``False`` selects the legacy unsupervised pool path (used by the
    #: overhead benchmark and as an escape hatch).
    enabled: bool = True
    #: Solo pool-breakages a task may cause before it is quarantined.
    max_task_kills: int = 2
    #: Duplicate the slowest outstanding tasks once when slots idle.
    speculate: bool = False
    #: Declare a started task stalled after this many seconds without
    #: finishing, and SIGKILL its worker (``None`` disables).
    heartbeat_timeout: Optional[float] = None
    #: How often the dispatch loop wakes to check heartbeats (seconds).
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_task_kills < 1:
            raise ValueError("max_task_kills must be at least 1")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


@dataclass(frozen=True)
class PoisonedTask:
    """One quarantined task: its payload index and the typed error."""

    index: int
    kills: int
    error: PoisonedTaskError


@dataclass
class SupervisionReport:
    """What the supervisor did to keep one fan-out alive.

    Passing a report to ``run_tasks``/``execute_grid`` also opts the
    caller into *completing around* poisoned tasks: their result slots
    stay ``None`` and the quarantine is recorded here instead of being
    raised.  Without a report, the first quarantine raises.
    """

    worker_deaths: int = 0
    pool_rebuilds: int = 0
    redispatches: int = 0
    stalls_detected: int = 0
    speculative_launched: int = 0
    speculation_wins: int = 0
    speculation_mismatches: int = 0
    poisoned: List[PoisonedTask] = field(default_factory=list)

    def poisoned_indices(self) -> List[int]:
        return sorted(p.index for p in self.poisoned)


@dataclass(frozen=True)
class _TaskSpec:
    """Picklable wrapper payload for one supervised task attempt."""

    worker: Callable[[Any], Any]
    payload: Any
    capture_obs: bool
    index: int
    attempt: int
    fault_plan: Optional[object] = None
    heartbeat_dir: Optional[str] = None


def _heartbeat_path(hb_dir: str, index: int, attempt: int) -> str:
    return os.path.join(hb_dir, f"{index}-{attempt}.hb")


def _supervised_invoke(spec: _TaskSpec) -> Dict:
    """Run one task attempt inside a worker process.

    Stamps the heartbeat file (pid + monotonic start time) before doing
    any work, then applies injected process faults, then defers to the
    plain executor wrapper so obs capture is identical to the
    unsupervised path.
    """
    from .executor import _invoke  # local: avoid import cycle at module load

    if spec.heartbeat_dir:
        try:
            stamp = f"{os.getpid()} {time.monotonic():.6f}"
            with open(
                _heartbeat_path(spec.heartbeat_dir, spec.index, spec.attempt), "w"
            ) as fh:
                fh.write(stamp)
        except OSError:  # pragma: no cover - heartbeat dir vanished
            pass
    if spec.fault_plan is not None:
        from ..resilience.faults import FaultInjector

        FaultInjector(spec.fault_plan).apply_worker_faults(spec.index, spec.attempt)
    return _invoke(spec.worker, spec.payload, spec.capture_obs)


@dataclass
class _Flight:
    """Book-keeping for one in-flight future."""

    index: int
    attempt: int
    speculative: bool
    started: float  # parent-side monotonic dispatch time


class _Supervisor:
    """The supervised dispatch loop behind :func:`supervise_tasks`."""

    def __init__(
        self,
        worker: Callable[[Any], Any],
        payloads: Sequence[Any],
        jobs: int,
        on_result: Optional[Callable[[int, Any], None]],
        label: str,
        policy: SupervisionPolicy,
        capture_obs: bool,
        fault_plan: Optional[object],
        report: SupervisionReport,
        raise_on_poison: bool,
    ):
        self.worker = worker
        self.payloads = list(payloads)
        self.jobs = jobs
        self.on_result = on_result
        self.label = label
        self.policy = policy
        self.capture_obs = capture_obs
        self.fault_plan = fault_plan
        self.report = report
        self.raise_on_poison = raise_on_poison

        n = len(self.payloads)
        self.results: List[Any] = [None] * n
        self.done: set = set()
        self.pending: deque = deque(range(n))
        self.suspects: deque = deque()
        self.attempts: Dict[int, int] = {i: 0 for i in range(n)}
        self.kills: Dict[int, int] = {}
        self.speculated: set = set()
        self.in_flight: Dict[Any, _Flight] = {}
        self.stall_culprits: set = set()
        self.executor: Optional[ProcessPoolExecutor] = None
        self.hb_dir: Optional[str] = None
        # Every quarantine removes a task, so rebuilds are intrinsically
        # bounded; the explicit cap only guards against pathological
        # environments that kill workers between dispatches.
        self.rebuild_budget = n * (policy.max_task_kills + 2) + self.jobs + 8

    # -- pool lifecycle ------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        from .executor import _pool_context

        if self.executor is None:
            self.executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, max(1, len(self.payloads))),
                mp_context=_pool_context(),
            )
        return self.executor

    def _teardown_pool(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True, cancel_futures=True)
            self.executor = None

    # -- dispatch ------------------------------------------------------------
    def _submit(self, index: int, speculative: bool = False) -> None:
        if not speculative:
            self.attempts[index] += 1
        spec = _TaskSpec(
            worker=self.worker,
            payload=self.payloads[index],
            capture_obs=self.capture_obs,
            index=index,
            attempt=self.attempts[index],
            fault_plan=self.fault_plan,
            heartbeat_dir=self.hb_dir,
        )
        future = self._pool().submit(_supervised_invoke, spec)
        self.in_flight[future] = _Flight(
            index=index,
            attempt=self.attempts[index],
            speculative=speculative,
            started=time.monotonic(),
        )

    def _fill(self) -> None:
        # Queues are popped only after a successful submit, so a pool
        # that breaks mid-dispatch cannot drop the task being submitted.
        if self.suspects:
            # Probe mode: one suspect at a time, alone in the pool, so a
            # breakage is unambiguously attributable.
            if not self.in_flight:
                self._submit(self.suspects[0])
                self.suspects.popleft()
            return
        while self.pending and len(self.in_flight) < self.jobs:
            self._submit(self.pending[0])
            self.pending.popleft()
        if self.policy.speculate:
            self._maybe_speculate()

    def _maybe_speculate(self) -> None:
        if self.pending or self.suspects:
            return
        candidates = sorted(
            (
                flight
                for flight in self.in_flight.values()
                if not flight.speculative and flight.index not in self.speculated
            ),
            key=lambda flight: flight.started,
        )
        for flight in candidates:
            if len(self.in_flight) >= self.jobs:
                break
            self.speculated.add(flight.index)
            self._submit(flight.index, speculative=True)
            self.report.speculative_launched += 1
            obs.inc("parallel.supervisor.speculative_launched")
            obs.log_event(
                f"{self.label}.speculation_launched",
                index=flight.index,
                attempt=flight.attempt,
            )

    # -- completion ----------------------------------------------------------
    def _values_equal(self, a: Any, b: Any) -> bool:
        try:
            if a == b:
                return True
        except Exception:  # pragma: no cover - exotic __eq__
            pass
        # NaN-bearing payloads (N/A rows) compare unequal to themselves;
        # purity makes duplicates structurally identical, so repr
        # equality is the honest tie-breaker.
        return repr(a) == repr(b)

    def _complete(self, flight: _Flight, wrapped: Dict) -> None:
        from .executor import _merge_worker_obs

        index = flight.index
        if index in self.done:
            # The losing copy of a speculated task (or a stale re-dispatch
            # racing its own stall kill): verify purity, then drop it.
            if self._values_equal(self.results[index], wrapped["value"]):
                return
            self.report.speculation_mismatches += 1
            obs.inc("parallel.supervisor.speculation_mismatches")
            obs.log_event(
                f"{self.label}.speculation_mismatch",
                level="error",
                index=index,
            )
            return
        _merge_worker_obs(wrapped, worker_label=f"{self.label}-{index}")
        self.results[index] = wrapped["value"]
        self.done.add(index)
        obs.inc(f"{self.label}.tasks_completed")
        if flight.speculative:
            self.report.speculation_wins += 1
            obs.inc("parallel.supervisor.speculation_wins")
            obs.log_event(f"{self.label}.speculation_win", index=index)
        if self.on_result is not None:
            self.on_result(index, wrapped["value"])

    # -- failure handling ----------------------------------------------------
    def _quarantine(self, index: int) -> None:
        kills = self.kills.get(index, 0)
        error = PoisonedTaskError(
            f"task {index} killed its worker {kills} times in isolation; "
            f"quarantined (max_task_kills={self.policy.max_task_kills})",
            index=index,
            kills=kills,
        )
        self.report.poisoned.append(
            PoisonedTask(index=index, kills=kills, error=error)
        )
        self.done.add(index)
        obs.inc("parallel.supervisor.tasks_poisoned")
        obs.log_event(
            f"{self.label}.task_poisoned",
            level="error",
            index=index,
            kills=kills,
        )
        if self.raise_on_poison:
            raise error

    def _handle_breakage(self) -> None:
        """The pool broke: attribute, re-queue unfinished work, rebuild."""
        self.report.worker_deaths += 1
        obs.inc("parallel.supervisor.worker_deaths")
        flights = list(self.in_flight.values())
        self.in_flight.clear()
        primaries = [f for f in flights if not f.speculative]
        requeue: List[int] = []
        seen: set = set()
        for flight in flights:
            index = flight.index
            if index in self.done or index in seen:
                continue
            seen.add(index)
            solo = len(primaries) <= 1 or index in self.stall_culprits
            if solo:
                self.kills[index] = self.kills.get(index, 0) + 1
                if self.kills[index] >= self.policy.max_task_kills:
                    self._quarantine(index)
                    continue
                self.suspects.append(index)
            else:
                # Ambiguous breakage: everyone in flight is a suspect,
                # probed serially so the next kill names its culprit.
                self.suspects.append(index)
            requeue.append(index)
        self.stall_culprits.clear()
        # Re-dispatched tasks run with a fresh attempt number; purity
        # keeps their results bit-identical to a first-try run.
        self.speculated.difference_update(requeue)
        self.report.redispatches += len(requeue)
        obs.inc("parallel.supervisor.redispatches", len(requeue))
        obs.log_event(
            f"{self.label}.worker_died",
            level="warning",
            in_flight=sorted(f.index for f in flights),
            redispatched=len(requeue),
        )
        self._teardown_pool()
        self.report.pool_rebuilds += 1
        obs.inc("parallel.supervisor.pool_rebuilds")
        if self.report.pool_rebuilds > self.rebuild_budget:
            raise WorkerCrashError(
                f"{self.label}: pool broke {self.report.pool_rebuilds} times "
                f"(budget {self.rebuild_budget}); giving up with payload "
                f"indices {sorted(seen)} in flight",
                indices=sorted(seen),
            )

    def _check_stalls(self) -> None:
        timeout = self.policy.heartbeat_timeout
        if timeout is None or self.hb_dir is None:
            return
        now = time.monotonic()
        for future, flight in list(self.in_flight.items()):
            if future.done() or now - flight.started <= timeout:
                continue
            hb = _heartbeat_path(self.hb_dir, flight.index, flight.attempt)
            try:
                with open(hb) as fh:
                    pid_text, stamp_text = fh.read().split()
                pid, stamp = int(pid_text), float(stamp_text)
            except (OSError, ValueError):
                continue  # not started yet (queued): only dispatch latency
            if now - stamp <= timeout:
                continue
            self.report.stalls_detected += 1
            self.stall_culprits.add(flight.index)
            obs.inc("parallel.supervisor.stalls_detected")
            obs.log_event(
                f"{self.label}.worker_stalled",
                level="warning",
                index=flight.index,
                attempt=flight.attempt,
                pid=pid,
                stalled_s=round(now - stamp, 3),
            )
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover - raced exit
                pass

    # -- main loop -----------------------------------------------------------
    def run(self) -> List[Any]:
        n = len(self.payloads)
        hb_tmp = None
        if self.policy.heartbeat_timeout is not None:
            hb_tmp = tempfile.TemporaryDirectory(prefix="repro-heartbeat-")
            self.hb_dir = hb_tmp.name
        try:
            while len(self.done) < n:
                try:
                    self._fill()
                except BrokenProcessPool:
                    # The pool broke while idle or between dispatches;
                    # submit() surfaces it before any future does.
                    self._handle_breakage()
                    continue
                if not self.in_flight:
                    break  # everything left was quarantined
                done_futures, _ = wait(
                    set(self.in_flight),
                    timeout=self.policy.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                if not done_futures:
                    self._check_stalls()
                    continue
                broke = False
                for future in done_futures:
                    flight = self.in_flight.pop(future, None)
                    if flight is None:  # cleared by a breakage this round
                        continue
                    try:
                        wrapped = future.result()
                    except BrokenProcessPool:
                        self.in_flight[future] = flight  # breakage handles all
                        broke = True
                        break
                    except Exception:
                        # A genuine worker exception: the task *ran* and
                        # raised — not a crash, not retryable.  Propagate
                        # the original type, as the sequential path would.
                        raise
                    self._complete(flight, wrapped)
                if broke:
                    self._handle_breakage()
            return self.results
        finally:
            self._teardown_pool()
            if hb_tmp is not None:
                hb_tmp.cleanup()


def supervise_tasks(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int,
    on_result: Optional[Callable[[int, Any], None]] = None,
    label: str = "parallel",
    policy: Optional[SupervisionPolicy] = None,
    capture_obs: bool = False,
    fault_plan: Optional[object] = None,
    report: Optional[SupervisionReport] = None,
) -> Tuple[List[Any], SupervisionReport]:
    """Run ``worker`` over ``payloads`` under supervision.

    The supervised twin of the plain pool loop in
    :func:`repro.parallel.run_tasks` (which calls this when supervision
    is enabled): same ordering and obs-merging contract, plus worker
    death recovery, poison-task quarantine, optional heartbeat stall
    detection and speculative re-execution.

    When ``report`` is ``None`` a quarantine raises
    :class:`~repro.errors.PoisonedTaskError`; when the caller supplies a
    report, poisoned tasks leave ``None`` result slots and are recorded
    in ``report.poisoned`` so the caller can complete around them.
    Returns ``(results, report)``.
    """
    supervisor = _Supervisor(
        worker=worker,
        payloads=payloads,
        jobs=jobs,
        on_result=on_result,
        label=label,
        policy=policy or SupervisionPolicy(),
        capture_obs=capture_obs,
        fault_plan=fault_plan,
        report=report if report is not None else SupervisionReport(),
        raise_on_poison=report is None,
    )
    return supervisor.run(), supervisor.report
