"""Shared on-disk profile cache with an in-process LRU layer.

Profiling is the part of every experiment grid that is both expensive and
*pure*: the nsys execution-time profile is a deterministic function of
(workload contents, GPU config, repetition seed).  The sequential runner
already shares one collected profile across all methods of a repetition;
this cache extends that sharing across **processes** (parallel grid
workers) and across **runs** (repeated experiments, benchmark re-runs),
so a given (workload, GPU, seed) profile is collected exactly once per
machine.

Key derivation
--------------
``key = sha256(kind, workload.fingerprint(), repr(gpu), seed)``.  The
workload fingerprint hashes the full launch sequence byte-for-byte (see
:meth:`repro.workloads.Workload.fingerprint`), and ``repr(gpu)`` covers
every hardware parameter — so a rescaled workload, a different suite
seed, or a DSE hardware variant can never alias a stale entry.  Each
entry additionally stores its metadata next to the array; a metadata
mismatch (e.g. a hand-edited or corrupted entry) is treated as a miss
and the profile is recollected.

Durability
----------
Writes are atomic: the entry is serialized to a unique temp file in the
cache directory and ``os.replace``-d into place, so concurrent workers
racing on a cold cache can only ever observe a complete entry (the race
costs one redundant collection, never a torn read).

Integrity
---------
Every entry's metadata carries a SHA-256 checksum of the profile bytes
(plus dtype and shape), verified on each disk read.  A mismatch — bit
rot, torn storage, a hand-edited file — moves the entry into the
cache's ``quarantine/`` subdirectory (kept for forensics, excluded from
``len()``), counts it in obs metrics, and reports a miss so the profile
is transparently recollected; unreadable entries are quarantined the
same way.  A corrupted cache can cost recollection time but can never
poison results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from .. import obs

__all__ = ["ProfileCache"]

#: Bump when the on-disk entry layout changes incompatibly.
#: v2 added the content checksum to entry metadata.
CACHE_FORMAT_VERSION = 2

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"


def _array_checksum(array: np.ndarray) -> str:
    """SHA-256 over the array's bytes, dtype and shape."""
    h = hashlib.sha256()
    h.update(str(array.dtype).encode())
    h.update(repr(tuple(array.shape)).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


class ProfileCache:
    """Content-addressed store for collected profiles.

    Parameters
    ----------
    root:
        Directory holding the cache (created on demand).
    max_memory_entries:
        Capacity of the in-process LRU layer sitting in front of the
        disk; profiles re-read within one process never touch the
        filesystem twice.
    """

    def __init__(self, root: str, max_memory_entries: int = 64):
        self.root = str(root)
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._memory: "OrderedDict[str, np.ndarray]" = OrderedDict()
        #: Plain counters (kept in addition to obs metrics so tests and
        #: callers can read hit rates without enabling observability).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        #: Optional :class:`~repro.resilience.FaultInjector` used by the
        #: chaos harness to flip entry bytes right after a store.
        self.fault_injector = None

    # -- keys ----------------------------------------------------------------
    @staticmethod
    def key_for(workload, gpu, seed: int, kind: str = "nsys_times") -> str:
        """Content-addressed cache key for one profile."""
        h = hashlib.sha256()
        h.update(f"v{CACHE_FORMAT_VERSION}\x00{kind}\x00{int(seed)}\x00".encode())
        h.update(workload.fingerprint().encode())
        h.update(repr(gpu).encode())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".npz")

    # -- integrity -----------------------------------------------------------
    def _quarantine_entry(self, path: str, reason: str) -> None:
        """Move a bad entry into ``quarantine/`` and count it.

        The file is kept (not deleted) so corruption can be inspected
        after the fact; quarantined entries are invisible to ``get`` and
        excluded from ``len()``, so the profile is simply recollected.
        """
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        try:
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            pass  # racing reader already moved it; counting still applies
        self.corrupt += 1
        obs.inc("parallel.profile_cache.corrupt_quarantined")
        obs.log_event(
            "parallel.profile_cache_quarantined",
            level="warning",
            path=path,
            reason=reason,
        )

    # -- memory layer --------------------------------------------------------
    def _memory_get(self, key: str) -> Optional[np.ndarray]:
        arr = self._memory.get(key)
        if arr is not None:
            self._memory.move_to_end(key)
        return arr

    def _memory_put(self, key: str, array: np.ndarray) -> None:
        self._memory[key] = array
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- public API ----------------------------------------------------------
    def get(
        self, workload, gpu, seed: int, kind: str = "nsys_times"
    ) -> Optional[np.ndarray]:
        """Return the cached profile array, or ``None`` on a miss."""
        key = self.key_for(workload, gpu, seed, kind)
        arr = self._memory_get(key)
        if arr is not None:
            self.hits += 1
            obs.inc("parallel.profile_cache.memory_hits")
            return arr
        path = self._path(key)
        if os.path.exists(path):
            try:
                with np.load(path, allow_pickle=False) as payload:
                    meta = json.loads(bytes(payload["meta"]).decode())
                    arr = np.array(payload["profile"])
            except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                    json.JSONDecodeError):
                # Torn or foreign file: quarantine it, then recollect.
                self._quarantine_entry(path, reason="unreadable")
                meta, arr = None, None
            if arr is not None and self._meta_fresh(meta, workload, gpu, seed, kind):
                if meta.get("checksum") != _array_checksum(arr):
                    # Bit rot or a flipped byte: the entry parsed but its
                    # content no longer matches what was stored.
                    self._quarantine_entry(path, reason="checksum_mismatch")
                else:
                    self.hits += 1
                    obs.inc("parallel.profile_cache.disk_hits")
                    self._memory_put(key, arr)
                    return arr
        self.misses += 1
        obs.inc("parallel.profile_cache.misses")
        return None

    def put(
        self, workload, gpu, seed: int, array: np.ndarray, kind: str = "nsys_times"
    ) -> str:
        """Store a collected profile; returns the entry's key."""
        key = self.key_for(workload, gpu, seed, kind)
        array = np.asarray(array)
        self._memory_put(key, array)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        meta = self._meta(workload, gpu, seed, kind)
        meta["checksum"] = _array_checksum(array)
        blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-" + key[:8] + "-", suffix=".npz", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, profile=array, meta=blob)
            os.replace(tmp, path)  # atomic on POSIX: readers see old or new
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stores += 1
        obs.inc("parallel.profile_cache.stores")
        if self.fault_injector is not None and self.fault_injector.cache_corrupt_decision(
            key
        ):
            self.fault_injector.corrupt_cache_entry(path, key)
        return key

    def get_or_collect(
        self, workload, gpu, seed: int, collect, kind: str = "nsys_times"
    ) -> np.ndarray:
        """Cached read with a fallback collector ``collect() -> array``."""
        arr = self.get(workload, gpu, seed, kind)
        if arr is None:
            arr = np.asarray(collect())
            self.put(workload, gpu, seed, arr, kind=kind)
        return arr

    # -- metadata ------------------------------------------------------------
    @staticmethod
    def _meta(workload, gpu, seed: int, kind: str) -> Dict[str, object]:
        return {
            "version": CACHE_FORMAT_VERSION,
            "kind": kind,
            "workload": workload.name,
            "suite": workload.suite,
            "fingerprint": workload.fingerprint(),
            "gpu": getattr(gpu, "name", repr(gpu)),
            "gpu_repr_sha": hashlib.sha256(repr(gpu).encode()).hexdigest(),
            "seed": int(seed),
        }

    def _meta_fresh(self, meta, workload, gpu, seed: int, kind: str) -> bool:
        if not isinstance(meta, dict):
            return False
        expected = self._meta(workload, gpu, seed, kind)
        for field in ("version", "kind", "fingerprint", "gpu_repr_sha", "seed"):
            if meta.get(field) != expected[field]:
                return False
        return True

    # -- maintenance ---------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process LRU layer (the disk layer is untouched)."""
        self._memory.clear()

    def __len__(self) -> int:
        """Number of complete entries on disk (quarantine excluded)."""
        count = 0
        if os.path.isdir(self.root):
            for sub in os.listdir(self.root):
                if sub == QUARANTINE_DIR:
                    continue
                subdir = os.path.join(self.root, sub)
                if os.path.isdir(subdir):
                    count += sum(
                        1
                        for f in os.listdir(subdir)
                        if f.endswith(".npz") and not f.startswith(".tmp-")
                    )
        return count
