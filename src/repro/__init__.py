"""STEM+ROOT: swift and trustworthy large-scale GPU simulation.

Reproduction of Chung et al., MICRO '25.  The package layers:

* :mod:`repro.workloads` — kernels, launch contexts, benchmark suites;
* :mod:`repro.hardware` — GPU configs and the analytical timing model;
* :mod:`repro.profiling` — nsys / NCU / NVBit / BBV profiler models;
* :mod:`repro.core` — STEM error modeling, ROOT clustering, sampling;
* :mod:`repro.baselines` — Random, PKA, Sieve, Photon samplers;
* :mod:`repro.sim` — a cycle-level GPU simulator (MacSim substitute);
* :mod:`repro.analysis` / :mod:`repro.experiments` — evaluation harness.

Quickstart::

    from repro import (
        StemRootSampler, ProfileStore, evaluate_plan, RTX_2080,
    )
    from repro.workloads import load_workload

    workload = load_workload("casio", "bert_infer")
    store = ProfileStore(workload, RTX_2080, seed=0)
    plan = StemRootSampler(epsilon=0.05).build_plan_from_store(store)
    result = evaluate_plan(plan, store.execution_times())
    print(result.error_percent, result.speedup)
"""

from .baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
)
from .core import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    RootConfig,
    SamplingPlan,
    StemRootSampler,
    evaluate_plan,
    kkt_sample_sizes,
    root_split,
    single_cluster_sample_size,
)
from .errors import (
    CheckpointError,
    EstimationError,
    InfeasibleProfilingError,
    ProfileValidationError,
    ReproError,
    SimulationFailure,
    SimulationTimeout,
)
from .hardware import H100, H200, RTX_2080, GPUConfig, TimingModel
from .resilience import (
    FaultInjector,
    FaultPlan,
    GridCheckpoint,
    ResilientExecutor,
    RetryPolicy,
    sample_resiliently,
)
from .sim import GpuSimulator
from .workloads import Workload, load_suite, load_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "StemRootSampler",
    "SamplingPlan",
    "ClusterStats",
    "RootConfig",
    "root_split",
    "kkt_sample_sizes",
    "single_cluster_sample_size",
    "evaluate_plan",
    "DEFAULT_EPSILON",
    "DEFAULT_Z",
    "ProfileStore",
    "RandomSampler",
    "PkaSampler",
    "SieveSampler",
    "PhotonSampler",
    "GPUConfig",
    "TimingModel",
    "RTX_2080",
    "H100",
    "H200",
    "GpuSimulator",
    "Workload",
    "load_workload",
    "load_suite",
    # typed errors
    "ReproError",
    "InfeasibleProfilingError",
    "ProfileValidationError",
    "SimulationFailure",
    "SimulationTimeout",
    "EstimationError",
    "CheckpointError",
    # resilience
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "ResilientExecutor",
    "GridCheckpoint",
    "sample_resiliently",
]
