"""Typed exception hierarchy for the whole pipeline.

Every failure the pipeline *expects* — infeasible profiling, corrupted
profiles, crashed or hung sample simulations, unusable checkpoints —
raises a subclass of :class:`ReproError`, so orchestration code can
catch exactly the failures it knows how to handle and let genuine bugs
propagate.  Before this hierarchy existed the experiment runner caught
bare ``RuntimeError``, which silently relabeled *any* runtime bug as
"profiling infeasible (N/A)".

Compatibility notes:

* :class:`InfeasibleProfilingError` also subclasses ``RuntimeError``
  because the infeasibility guards in :mod:`repro.baselines` historically
  raised ``RuntimeError`` and downstream users may still catch that.
* :class:`EstimationError` also subclasses ``ValueError`` for the same
  reason (``sampling_error_percent`` used to raise ``ValueError``).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "ReproError",
    "InfeasibleProfilingError",
    "ProfileValidationError",
    "SimulationFailure",
    "SimulationTimeout",
    "EstimationError",
    "CheckpointError",
    "WorkerCrashError",
    "PoisonedTaskError",
    "GridExecutionError",
]


class ReproError(Exception):
    """Base class of every expected pipeline failure."""


class InfeasibleProfilingError(ReproError, RuntimeError):
    """Profiling a workload at this scale is not practical (Table 5 N/A).

    Raised by the baseline samplers whose profilers (NCU, NVBit, BBV)
    take months beyond a kernel-count threshold.  Subclasses
    ``RuntimeError`` for backward compatibility with older callers.
    """


class ProfileValidationError(ReproError, ValueError):
    """A profile failed validation (NaN/inf/negative times, bad length).

    ``issues`` lists the individual problems found, so strict-mode
    callers can report all of them at once instead of one per run.
    """

    def __init__(self, message: str, issues: Optional[List[str]] = None):
        super().__init__(message)
        self.issues: List[str] = list(issues or [])


class SimulationFailure(ReproError):
    """One sample simulation crashed.

    ``key`` identifies the failed unit of work (typically the workload
    invocation index); ``attempt`` is the 1-based retry attempt that
    observed the failure, when known.  ``permanent`` marks failures that
    retrying cannot fix — the resilient executor quarantines these
    immediately instead of burning its retry budget.
    """

    def __init__(
        self,
        message: str,
        key: object = None,
        attempt: int = 0,
        permanent: bool = False,
    ):
        super().__init__(message)
        self.key = key
        self.attempt = attempt
        self.permanent = permanent


class SimulationTimeout(SimulationFailure):
    """One sample simulation exceeded its deadline budget (a hang)."""

    def __init__(
        self,
        message: str,
        key: object = None,
        attempt: int = 0,
        elapsed: float = 0.0,
        deadline: float = 0.0,
    ):
        super().__init__(message, key=key, attempt=attempt)
        self.elapsed = elapsed
        self.deadline = deadline


class EstimationError(ReproError, ValueError):
    """A plan cannot be evaluated against the given ground truth.

    Subclasses ``ValueError`` for backward compatibility with callers
    that caught the generic error ``sampling_error_percent`` used to
    raise.
    """


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or inconsistent with the run."""


class WorkerCrashError(ReproError):
    """A process-pool worker died (SIGKILL, OOM, hard crash).

    Raised instead of the raw ``concurrent.futures`` pool-breakage
    errors so orchestration code can catch pool death as a pipeline
    failure.  ``indices`` lists the payload indices that were in flight
    when the pool broke — one of them is the likely culprit.
    """

    def __init__(self, message: str, indices: Optional[List[int]] = None):
        super().__init__(message)
        self.indices: List[int] = list(indices or [])


class PoisonedTaskError(WorkerCrashError):
    """One task killed its worker ``kills`` times and was quarantined.

    The supervisor attributes worker deaths to tasks by re-running
    suspects in isolation; a task whose isolated re-runs keep breaking
    the pool is poison (it SIGKILLs, OOMs or corrupts its process) and
    retrying it further would sink the whole sweep.
    """

    def __init__(self, message: str, index: int = -1, kills: int = 0):
        super().__init__(message, indices=[index] if index >= 0 else [])
        self.index = index
        self.kills = kills


class GridExecutionError(ReproError, RuntimeError):
    """A parallel grid failed after some cells already completed.

    Carries the partial state: ``completed_cells`` lists the
    ``(suite, workload, method, repetition)`` keys whose rows were
    computed (and flushed to the checkpoint, when one is attached)
    before the failure surfaced.  Subclasses ``RuntimeError`` for
    backward compatibility with callers that caught the raw worker
    exception; the original failure is chained as ``__cause__`` and
    quoted in the message.
    """

    def __init__(self, message: str, completed_cells: Optional[List[tuple]] = None):
        super().__init__(message)
        self.completed_cells: List[tuple] = list(completed_cells or [])
