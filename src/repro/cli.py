"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sample``    profile a workload, build a STEM+ROOT plan, report results
``compare``   run all five methods on one workload
``suites``    list available suites and workloads
``report``    transparency report for a freshly built plan
``trace``     write a sampled-kernel trace file for a plan
``obs``       pretty-print a run report from saved trace/metrics files
``faults``    describe a fault spec and dry-run it against a workload
``grid``      run a (method x workload x repetition) grid, resumably
``suite``     run a whole suite and print per-method Table-3 summaries
``sweep``     error-bound sensitivity sweep (Figure 11) with memoization
``dse``       design-space exploration grid (Table 4)
``lint``      AST-based invariant linter (determinism, cache keys, pool
              safety — see :mod:`repro.lint` and docs/static-analysis.md)

Parallelism & memoization
-------------------------
``grid``, ``suite``, ``sweep`` and ``dse`` accept ``--jobs N`` (``0`` =
all cores) to fan cells across worker processes — results are
bit-identical to ``--jobs 1`` by construction.  ``--profile-cache DIR``
reuses collected profiles across runs and workers, and ``--fsync-every
N`` batches checkpoint durability barriers on large fast grids.
``sweep`` and ``dse`` additionally accept ``--sim-cache DIR`` (reuse raw
simulation results across epsilon points, DSE variants and re-runs — see
:mod:`repro.memo`); sequential sweeps share ROOT candidate split trees
across epsilon points automatically.  Caching never changes any number:
warm runs are bit-identical to cold ones.

Fault tolerance
---------------
Workload commands accept ``--faults SPEC`` (e.g.
``--faults "seed=3,sim_fail=0.1,nan=0.02"``), which routes the run
through the resilient pipeline: profiles are corrupted then repaired,
failing sample simulations are retried and, when permanently dead,
replaced by re-drawn cluster members with the error bound recomputed —
the output then reports *achieved* next to *requested* epsilon.  ``grid``
accepts ``--checkpoint PATH`` (plus ``--resume``) to persist per-cell
progress and continue a killed run exactly where it stopped.

Observability
-------------
Every workload command accepts ``--trace-out PATH`` (Chrome-trace JSON,
open in ``chrome://tracing``) and ``--metrics-out PATH`` (counters,
gauges and histogram sketches as JSON).  Either flag — or setting the
``REPRO_LOG_LEVEL`` environment variable (debug/info/warning/error) —
enables the :mod:`repro.obs` layer for the run; with ``REPRO_LOG_LEVEL``
set, structured JSONL events also stream to stderr.  Without any of the
three, observability stays in no-op mode and runs are bit-identical to
uninstrumented ones.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import obs
from .analysis import render_table
from .baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
)
from .core import StemRootSampler, evaluate_plan
from .core.report import build_report
from .errors import InfeasibleProfilingError, ProfileValidationError
from .hardware import PRESETS, get_preset
from .resilience import FaultInjector, FaultPlan, sample_resiliently
from .traces import write_sampled_trace
from .workloads import load_workload, suite_names
from .workloads.suites import SUITES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEM+ROOT kernel-level sampling for GPU simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("suite", choices=suite_names())
        p.add_argument("workload")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size scale factor")
        p.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epsilon", type=float, default=0.05,
                       help="STEM error bound")
        p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a Chrome-trace JSON of the run's spans")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the run's metrics registry as JSON")
        p.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault-injection spec, e.g. "
                            "'seed=3,sim_fail=0.1,nan=0.02' (see repro faults)")

    p_sample = sub.add_parser("sample", help="build and evaluate a STEM plan")
    add_workload_args(p_sample)

    p_compare = sub.add_parser("compare", help="run all five methods")
    add_workload_args(p_compare)
    p_compare.add_argument("--random-fraction", type=float, default=0.001)

    sub.add_parser("suites", help="list suites and workloads")

    p_faults = sub.add_parser(
        "faults", help="describe a fault spec (optionally dry-run it)"
    )
    p_faults.add_argument("spec", help="fault spec, e.g. 'seed=3,sim_fail=0.1'")
    p_faults.add_argument("--suite", choices=suite_names(), default=None)
    p_faults.add_argument("--workload", default=None)
    p_faults.add_argument("--scale", type=float, default=1.0)
    p_faults.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_faults.add_argument("--seed", type=int, default=0)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("suite", choices=suite_names())
        p.add_argument("workloads", nargs="*",
                       help="workload names (default: whole suite)")
        p.add_argument("--methods", default=None,
                       help="comma-separated method list (default: all five)")
        p.add_argument("--repetitions", type=int, default=3)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epsilon", type=float, default=0.05)
        p.add_argument("--faults", metavar="SPEC", default=None)
        p.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="persist per-cell progress to this JSONL file")
        p.add_argument("--resume", action="store_true",
                       help="continue from an existing checkpoint file")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores, default 1); "
                            "results are bit-identical to --jobs 1")
        p.add_argument("--profile-cache", metavar="DIR", default=None,
                       help="reuse collected profiles from this cache "
                            "directory across runs and workers")
        p.add_argument("--fsync-every", type=int, default=1,
                       help="fsync the checkpoint once per N rows "
                            "(default 1 = every row)")

    p_grid = sub.add_parser(
        "grid", help="run a (method x workload x repetition) grid"
    )
    add_grid_args(p_grid)

    p_suite = sub.add_parser(
        "suite", help="run a whole suite and print per-method summaries"
    )
    add_grid_args(p_suite)

    p_sweep = sub.add_parser(
        "sweep", help="error-bound sensitivity sweep (Figure 11)"
    )
    p_sweep.add_argument("suite", nargs="?", choices=suite_names(),
                         default="casio")
    p_sweep.add_argument("--epsilons", default=None,
                         help="comma-separated error bounds "
                              "(default: 0.03,0.05,0.10,0.25)")
    p_sweep.add_argument("--repetitions", type=int, default=3)
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--ground-truth", choices=["profile", "sim"],
                         default="profile",
                         help="score plans against the nsys profile "
                              "(default) or the cycle simulator (the mode "
                              "where --sim-cache pays off)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (0 = all cores, default 1)")
    p_sweep.add_argument("--profile-cache", metavar="DIR", default=None,
                         help="reuse collected profiles from this directory")
    p_sweep.add_argument("--sim-cache", metavar="DIR", default=None,
                         help="reuse raw simulation results from this "
                              "directory across points and runs")
    p_sweep.add_argument("--out", metavar="PATH", default=None,
                         help="write points + cache hit rates as JSON")
    p_sweep.add_argument("--trace-out", metavar="PATH", default=None)
    p_sweep.add_argument("--metrics-out", metavar="PATH", default=None)

    p_dse = sub.add_parser(
        "dse", help="design-space exploration grid (Table 4)"
    )
    p_dse.add_argument("--workloads", default=None,
                       help="comma-separated workload names "
                            "(default: the paper's 17 reduced workloads)")
    p_dse.add_argument("--methods", default=None,
                       help="comma-separated method list "
                            "(default: pka,sieve,photon,stem)")
    p_dse.add_argument("--repetitions", type=int, default=3)
    p_dse.add_argument("--max-invocations", type=int, default=200,
                       help="reduce each workload to at most this many "
                            "invocations (paper Sec. 5.4)")
    p_dse.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_dse.add_argument("--seed", type=int, default=0)
    p_dse.add_argument("--epsilon", type=float, default=0.05)
    p_dse.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores, default 1)")
    p_dse.add_argument("--profile-cache", metavar="DIR", default=None,
                       help="reuse collected profiles from this directory")
    p_dse.add_argument("--sim-cache", metavar="DIR", default=None,
                       help="reuse full variant simulations from this "
                            "directory across runs")
    p_dse.add_argument("--out", metavar="PATH", default=None,
                       help="write results + cache hit rates as JSON")
    p_dse.add_argument("--trace-out", metavar="PATH", default=None)
    p_dse.add_argument("--metrics-out", metavar="PATH", default=None)

    p_report = sub.add_parser("report", help="plan transparency report")
    add_workload_args(p_report)
    p_report.add_argument("--top", type=int, default=15)

    p_trace = sub.add_parser("trace", help="write a sampled-kernel trace")
    add_workload_args(p_trace)
    p_trace.add_argument("output", help="output .jsonl path")

    p_lint = sub.add_parser(
        "lint",
        help="run the repo invariant linter (exit 0 clean / 1 findings / "
             "2 internal error)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)

    p_obs = sub.add_parser(
        "obs", help="pretty-print a run report from saved obs files"
    )
    p_obs.add_argument("trace", help="Chrome-trace JSON written by --trace-out")
    p_obs.add_argument("--metrics", default=None,
                       help="metrics JSON written by --metrics-out")
    p_obs.add_argument("--top", type=int, default=8,
                       help="how many hottest spans to list")
    return parser


def _store(args) -> ProfileStore:
    workload = load_workload(args.suite, args.workload, scale=args.scale, seed=args.seed)
    return ProfileStore(workload, get_preset(args.gpu), seed=args.seed)


def _faulty_store(args) -> ProfileStore:
    """A store whose *observed* profile is corrupted (and repaired)."""
    fault_plan = _fault_plan(args)
    store = _store(args)
    if fault_plan is not None and fault_plan.corrupts_profiles:
        store.fault_injector = FaultInjector(fault_plan)
        store.validation = "repair"
    return store


def _fault_plan(args) -> Optional[FaultPlan]:
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    return plan if plan.enabled else None


def _cmd_sample(args) -> int:
    store = _store(args)
    fault_plan = _fault_plan(args)
    if fault_plan is None:
        plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
            store, seed=args.seed
        )
        result = evaluate_plan(plan, store.execution_times())
        print(
            render_table(
                ["workload", "launches", "clusters", "samples", "error %", "speedup x", "bound %"],
                [[
                    store.workload.name,
                    len(store.workload),
                    plan.num_clusters,
                    plan.num_samples,
                    result.error_percent,
                    result.speedup,
                    plan.metadata["predicted_error"] * 100,
                ]],
                title="STEM+ROOT sampled simulation",
            )
        )
        return 0

    res = sample_resiliently(
        store,
        StemRootSampler(epsilon=args.epsilon),
        fault_plan=fault_plan,
        seed=args.seed,
    )
    print(
        render_table(
            [
                "workload", "launches", "clusters", "samples", "error %",
                "speedup x", "requested eps %", "achieved eps %",
                "quarantined", "retries",
            ],
            [[
                store.workload.name,
                len(store.workload),
                res.plan.num_clusters,
                res.plan.num_samples,
                res.result.error_percent,
                res.result.speedup,
                res.requested_epsilon * 100,
                res.achieved_epsilon * 100,
                res.quarantined,
                res.retries,
            ]],
            title="STEM+ROOT sampled simulation (fault-injected)",
        )
    )
    if res.degraded:
        print(
            f"degraded mode: {res.quarantined} samples quarantined, "
            f"{res.redrawn} re-drawn, "
            f"{'re-allocated' if res.reallocated else 'original allocation'}; "
            f"profile {'repaired' if res.profile_health.repaired else 'clean'}"
        )
    return 0


def _cmd_compare(args) -> int:
    store = _faulty_store(args)
    # Plans are built from the (possibly corrupted, then repaired)
    # observed profile but scored against the clean ground truth.
    store.execution_times()
    times = store.true_execution_times()
    samplers = [
        RandomSampler(args.random_fraction),
        PkaSampler(),
        SieveSampler(),
        PhotonSampler(),
        StemRootSampler(epsilon=args.epsilon),
    ]
    rows = []
    for sampler in samplers:
        try:
            if hasattr(sampler, "build_plan_from_store"):
                plan = sampler.build_plan_from_store(store, seed=args.seed)
            else:
                plan = sampler.build_plan(store, seed=args.seed)
        except (InfeasibleProfilingError, ProfileValidationError) as err:
            # Infeasible profiling and corrupt profiles are expected,
            # reportable outcomes; anything else is a bug and propagates.
            rows.append([sampler.method, float("nan"), float("nan"), str(err)[:40]])
            continue
        result = evaluate_plan(plan, times)
        rows.append([plan.method, result.error_percent, result.speedup, ""])
    print(
        render_table(
            ["method", "error %", "speedup x", "note"],
            rows,
            title=f"Sampling methods on {store.workload.name}",
        )
    )
    return 0


def _cmd_suites(_args) -> int:
    rows = []
    for suite, registry in sorted(SUITES.items()):
        for name in registry.names():
            rows.append([suite, name])
    print(render_table(["suite", "workload"], rows, title="Available workloads"))
    return 0


def _cmd_report(args) -> int:
    store = _faulty_store(args)
    times = store.execution_times()
    sampler = StemRootSampler(epsilon=args.epsilon)
    plan = sampler.build_plan(store.workload, times, seed=args.seed)
    # Recover cluster membership for exact per-cluster statistics.
    import numpy as np

    rng = np.random.default_rng(args.seed)
    labeled = sampler.cluster(store.workload, times, rng=rng)
    counter = {}
    members = {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    report = build_report(plan, times, cluster_members=members)
    print(report.to_text(top=args.top))
    return 0


def _cmd_trace(args) -> int:
    store = _faulty_store(args)
    plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
        store, seed=args.seed
    )
    count = write_sampled_trace(args.output, store.workload, plan)
    print(
        f"wrote {count} sampled-kernel records "
        f"(of {len(store.workload)} launches) to {args.output}"
    )
    return 0


def _cmd_obs(args) -> int:
    events = obs.load_chrome_trace(args.trace)
    metrics = obs.load_metrics_json(args.metrics) if args.metrics else None
    report = obs.build_run_report(events, metrics)
    print(report.to_text(top=args.top))
    return 0


def _cmd_faults(args) -> int:
    plan = FaultPlan.from_spec(args.spec)
    print("fault plan:")
    print(plan.describe())
    if args.suite is None or args.workload is None:
        if not plan.enabled:
            return 0
        print("\n(pass --suite and --workload to dry-run the plan "
              "against a profile)")
        return 0
    if not plan.enabled:
        print("\nnothing to dry-run: all rates are zero")
        return 0

    import numpy as np

    workload = load_workload(
        args.suite, args.workload, scale=args.scale, seed=args.seed
    )
    store = ProfileStore(workload, get_preset(args.gpu), seed=args.seed)
    injector = FaultInjector(plan)
    clean = store.execution_times()
    corrupted = injector.corrupt_times(clean)
    finite = np.isfinite(corrupted)
    rows = [
        ["profile entries", len(clean)],
        ["after truncation", len(corrupted)],
        ["NaN", int(np.isnan(corrupted).sum())],
        ["inf", int(np.isinf(corrupted).sum())],
        ["negative", int((finite & (corrupted < 0)).sum())],
        ["zero (dropped)", int((finite & (corrupted == 0)).sum())],
    ]
    if plan.fails_simulations:
        decisions = [
            injector.simulation_decision(i, attempt=1).kind
            for i in range(len(workload))
        ]
        rows.append(["sim fail (attempt 1)", decisions.count("fail")])
        rows.append(["sim perm-fail", decisions.count("perm_fail")])
        rows.append(["sim hang (attempt 1)", decisions.count("hang")])
    print(
        render_table(
            ["fault", "count"],
            rows,
            title=f"dry run on {workload.name} (deterministic for seed "
                  f"{plan.seed})",
        )
    )
    return 0


def _run_grid(args):
    """Shared grid driver for ``grid`` and ``suite``.

    Returns the result rows, or an integer exit status on refusal.
    """
    from .experiments.runner import METHODS, ExperimentConfig, run_suite
    from .resilience import GridCheckpoint

    if args.checkpoint and not args.resume and os.path.exists(args.checkpoint) \
            and os.path.getsize(args.checkpoint) > 0:
        print(
            f"checkpoint {args.checkpoint!r} already exists; pass --resume "
            "to continue it or delete the file to start over",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        gpu=get_preset(args.gpu),
        repetitions=args.repetitions,
        base_seed=args.seed,
        epsilon=args.epsilon,
        workload_scale=args.scale,
        fault_plan=_fault_plan(args),
    )
    checkpoint = None
    if args.checkpoint:
        checkpoint = GridCheckpoint(
            args.checkpoint,
            config=config.fingerprint(),
            fsync_every=args.fsync_every,
        )
    profile_cache = None
    if args.profile_cache:
        from .parallel import ProfileCache

        profile_cache = ProfileCache(args.profile_cache)
    methods = args.methods.split(",") if args.methods else METHODS
    try:
        return run_suite(
            args.suite,
            config=config,
            methods=methods,
            workload_names=args.workloads or None,
            checkpoint=checkpoint,
            jobs=args.jobs,
            profile_cache=profile_cache,
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _cmd_grid(args) -> int:
    rows = _run_grid(args)
    if isinstance(rows, int):
        return rows
    print(
        render_table(
            ["workload", "method", "rep", "error %", "speedup x", "feasible"],
            [
                [r.workload, r.method, r.repetition, r.error_percent,
                 r.speedup, "yes" if r.feasible else "N/A"]
                for r in rows
            ],
            title=f"grid: {args.suite} ({len(rows)} cells)",
        )
    )
    if args.checkpoint:
        print(f"progress checkpointed to {args.checkpoint}", file=sys.stderr)
    return 0


def _cmd_suite(args) -> int:
    from .experiments.speedup_error import summarize

    rows = _run_grid(args)
    if isinstance(rows, int):
        return rows
    summaries = summarize(rows)
    print(
        render_table(
            ["suite", "method", "error %", "speedup x", "feasible"],
            [
                [s.suite, s.method, s.error_percent, s.speedup,
                 "yes" if s.feasible else "N/A"]
                for s in summaries
            ],
            title=f"suite summary: {args.suite} "
                  f"({len(rows)} cells, jobs={args.jobs})",
        )
    )
    if args.checkpoint:
        print(f"progress checkpointed to {args.checkpoint}", file=sys.stderr)
    return 0


def _memo_caches(args, jobs: int):
    """Build the (profile, sim, tree) caches a memoized command asked for."""
    profile_cache = None
    if getattr(args, "profile_cache", None):
        from .parallel import ProfileCache

        profile_cache = ProfileCache(args.profile_cache)
    sim_cache = None
    if getattr(args, "sim_cache", None):
        from .memo import SimResultCache

        sim_cache = SimResultCache(args.sim_cache)
    tree_cache = None
    if jobs == 1:
        from .memo import SplitTreeCache

        tree_cache = SplitTreeCache()
    return profile_cache, sim_cache, tree_cache


def _memo_stats(profile_cache, sim_cache, tree_cache):
    """Per-stage hit/miss counters as one JSON-ready dict."""
    out = {}
    if profile_cache is not None:
        out["profile_cache"] = {
            "hits": profile_cache.hits,
            "misses": profile_cache.misses,
            "stores": profile_cache.stores,
        }
    if sim_cache is not None:
        out["sim_cache"] = sim_cache.stats()
        total = sim_cache.hits + sim_cache.misses
        out["sim_cache"]["hit_rate"] = sim_cache.hits / total if total else 0.0
    if tree_cache is not None:
        out["tree_cache"] = tree_cache.stats()
    return out


def _print_memo_stats(stats) -> None:
    if not stats:
        return
    parts = []
    for stage, counters in stats.items():
        hits = counters.get("hits", 0)
        misses = counters.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "-"
        parts.append(f"{stage}: {hits}/{total} hits ({rate})")
    print("memo: " + "; ".join(parts), file=sys.stderr)


def _cmd_sweep(args) -> int:
    import dataclasses
    import json

    from .experiments.error_bound_sweep import (
        DEFAULT_EPSILONS,
        run_error_bound_sweep,
    )
    from .experiments.runner import ExperimentConfig

    epsilons = (
        [float(e) for e in args.epsilons.split(",")]
        if args.epsilons
        else list(DEFAULT_EPSILONS)
    )
    config = ExperimentConfig(
        gpu=get_preset(args.gpu),
        repetitions=args.repetitions,
        base_seed=args.seed,
        workload_scale=args.scale,
    )
    profile_cache, sim_cache, tree_cache = _memo_caches(args, args.jobs)
    points = run_error_bound_sweep(
        epsilons,
        config=config,
        suite=args.suite,
        jobs=args.jobs,
        profile_cache=profile_cache,
        sim_cache=sim_cache,
        ground_truth=args.ground_truth,
        tree_cache=tree_cache,
    )
    print(
        render_table(
            ["epsilon %", "speedup x", "error %", "mean samples"],
            [
                [p.epsilon * 100, p.speedup, p.error_percent, p.mean_samples]
                for p in points
            ],
            title=f"error-bound sweep: {args.suite} "
                  f"({len(epsilons)} points, truth={args.ground_truth})",
        )
    )
    stats = _memo_stats(profile_cache, sim_cache, tree_cache)
    _print_memo_stats(stats)
    if args.out:
        payload = {
            "suite": args.suite,
            "epsilons": epsilons,
            "ground_truth": args.ground_truth,
            "repetitions": args.repetitions,
            "seed": args.seed,
            "scale": args.scale,
            "points": [dataclasses.asdict(p) for p in points],
            "memo": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote sweep results to {args.out}", file=sys.stderr)
    return 0


def _cmd_dse(args) -> int:
    import dataclasses
    import json

    from .experiments.dse import (
        default_dse_workloads,
        run_dse,
        table4_summary,
        VARIANT_LABELS,
    )

    specs = default_dse_workloads(max_invocations=args.max_invocations)
    if args.workloads:
        wanted = {name.strip() for name in args.workloads.split(",")}
        specs = [spec for spec in specs if spec.name in wanted]
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            print(
                f"unknown DSE workloads: {', '.join(sorted(unknown))} "
                f"(available: {', '.join(s.name for s in default_dse_workloads())})",
                file=sys.stderr,
            )
            return 2
    methods = args.methods.split(",") if args.methods else None
    profile_cache, sim_cache, _ = _memo_caches(args, args.jobs)
    results = run_dse(
        specs,
        baseline_gpu=get_preset(args.gpu),
        methods=methods,
        repetitions=args.repetitions,
        seed=args.seed,
        epsilon=args.epsilon,
        jobs=args.jobs,
        profile_cache=profile_cache,
        sim_cache=sim_cache,
    )
    table = table4_summary(results)
    method_order = methods or ["pka", "sieve", "photon", "stem"]
    print(
        render_table(
            ["variant"] + [f"{m} err %" for m in method_order],
            [
                [variant] + [table.get(variant, {}).get(m, float("nan"))
                             for m in method_order]
                for variant in VARIANT_LABELS
                if variant in table
            ],
            title=f"DSE error by variant ({len(specs)} workloads, "
                  f"{args.repetitions} reps)",
        )
    )
    stats = _memo_stats(profile_cache, sim_cache, None)
    _print_memo_stats(stats)
    if args.out:
        payload = {
            "workloads": [spec.name for spec in specs],
            "methods": method_order,
            "repetitions": args.repetitions,
            "seed": args.seed,
            "epsilon": args.epsilon,
            "results": [dataclasses.asdict(r) for r in results],
            "table": table,
            "memo": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote DSE results to {args.out}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from .lint.cli import run_lint_command

    return run_lint_command(args)


_COMMANDS = {
    "sample": _cmd_sample,
    "compare": _cmd_compare,
    "suites": _cmd_suites,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
    "faults": _cmd_faults,
    "grid": _cmd_grid,
    "suite": _cmd_suite,
    "sweep": _cmd_sweep,
    "dse": _cmd_dse,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    log_level = os.environ.get(obs.LOG_LEVEL_ENV)
    enable = bool(trace_out or metrics_out or log_level)
    if not enable:
        return _COMMANDS[args.command](args)

    # Stream events to stderr only when the user asked for a level, so
    # --trace-out alone keeps stdout/stderr exactly as before.
    session = obs.configure(
        log_level=log_level,
        event_stream=sys.stderr if log_level else None,
    )
    try:
        status = _COMMANDS[args.command](args)
    finally:
        if trace_out:
            count = session.write_trace(trace_out)
            print(f"wrote {count} trace events to {trace_out}", file=sys.stderr)
        if metrics_out:
            session.write_metrics(metrics_out)
            print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        obs.disable()
    return status


if __name__ == "__main__":
    sys.exit(main())
