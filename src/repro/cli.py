"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sample``    profile a workload, build a STEM+ROOT plan, report results
``compare``   run all five methods on one workload
``suites``    list available suites and workloads
``report``    transparency report for a freshly built plan
``trace``     write a sampled-kernel trace file for a plan
``obs``       pretty-print a run report from saved trace/metrics files

Observability
-------------
Every workload command accepts ``--trace-out PATH`` (Chrome-trace JSON,
open in ``chrome://tracing``) and ``--metrics-out PATH`` (counters,
gauges and histogram sketches as JSON).  Either flag — or setting the
``REPRO_LOG_LEVEL`` environment variable (debug/info/warning/error) —
enables the :mod:`repro.obs` layer for the run; with ``REPRO_LOG_LEVEL``
set, structured JSONL events also stream to stderr.  Without any of the
three, observability stays in no-op mode and runs are bit-identical to
uninstrumented ones.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import obs
from .analysis import render_table
from .baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
)
from .core import StemRootSampler, evaluate_plan
from .core.report import build_report
from .hardware import PRESETS, get_preset
from .traces import write_sampled_trace
from .workloads import load_workload, suite_names
from .workloads.suites import SUITES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEM+ROOT kernel-level sampling for GPU simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("suite", choices=suite_names())
        p.add_argument("workload")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size scale factor")
        p.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epsilon", type=float, default=0.05,
                       help="STEM error bound")
        p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a Chrome-trace JSON of the run's spans")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the run's metrics registry as JSON")

    p_sample = sub.add_parser("sample", help="build and evaluate a STEM plan")
    add_workload_args(p_sample)

    p_compare = sub.add_parser("compare", help="run all five methods")
    add_workload_args(p_compare)
    p_compare.add_argument("--random-fraction", type=float, default=0.001)

    sub.add_parser("suites", help="list suites and workloads")

    p_report = sub.add_parser("report", help="plan transparency report")
    add_workload_args(p_report)
    p_report.add_argument("--top", type=int, default=15)

    p_trace = sub.add_parser("trace", help="write a sampled-kernel trace")
    add_workload_args(p_trace)
    p_trace.add_argument("output", help="output .jsonl path")

    p_obs = sub.add_parser(
        "obs", help="pretty-print a run report from saved obs files"
    )
    p_obs.add_argument("trace", help="Chrome-trace JSON written by --trace-out")
    p_obs.add_argument("--metrics", default=None,
                       help="metrics JSON written by --metrics-out")
    p_obs.add_argument("--top", type=int, default=8,
                       help="how many hottest spans to list")
    return parser


def _store(args) -> ProfileStore:
    workload = load_workload(args.suite, args.workload, scale=args.scale, seed=args.seed)
    return ProfileStore(workload, get_preset(args.gpu), seed=args.seed)


def _cmd_sample(args) -> int:
    store = _store(args)
    plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
        store, seed=args.seed
    )
    result = evaluate_plan(plan, store.execution_times())
    print(
        render_table(
            ["workload", "launches", "clusters", "samples", "error %", "speedup x", "bound %"],
            [[
                store.workload.name,
                len(store.workload),
                plan.num_clusters,
                plan.num_samples,
                result.error_percent,
                result.speedup,
                plan.metadata["predicted_error"] * 100,
            ]],
            title="STEM+ROOT sampled simulation",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    store = _store(args)
    times = store.execution_times()
    samplers = [
        RandomSampler(args.random_fraction),
        PkaSampler(),
        SieveSampler(),
        PhotonSampler(),
        StemRootSampler(epsilon=args.epsilon),
    ]
    rows = []
    for sampler in samplers:
        try:
            if hasattr(sampler, "build_plan_from_store"):
                plan = sampler.build_plan_from_store(store, seed=args.seed)
            else:
                plan = sampler.build_plan(store, seed=args.seed)
        except RuntimeError as err:
            rows.append([sampler.method, float("nan"), float("nan"), str(err)[:40]])
            continue
        result = evaluate_plan(plan, times)
        rows.append([plan.method, result.error_percent, result.speedup, ""])
    print(
        render_table(
            ["method", "error %", "speedup x", "note"],
            rows,
            title=f"Sampling methods on {store.workload.name}",
        )
    )
    return 0


def _cmd_suites(_args) -> int:
    rows = []
    for suite, registry in sorted(SUITES.items()):
        for name in registry.names():
            rows.append([suite, name])
    print(render_table(["suite", "workload"], rows, title="Available workloads"))
    return 0


def _cmd_report(args) -> int:
    store = _store(args)
    times = store.execution_times()
    sampler = StemRootSampler(epsilon=args.epsilon)
    plan = sampler.build_plan(store.workload, times, seed=args.seed)
    # Recover cluster membership for exact per-cluster statistics.
    import numpy as np

    rng = np.random.default_rng(args.seed)
    labeled = sampler.cluster(store.workload, times, rng=rng)
    counter = {}
    members = {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    report = build_report(plan, times, cluster_members=members)
    print(report.to_text(top=args.top))
    return 0


def _cmd_trace(args) -> int:
    store = _store(args)
    plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
        store, seed=args.seed
    )
    count = write_sampled_trace(args.output, store.workload, plan)
    print(
        f"wrote {count} sampled-kernel records "
        f"(of {len(store.workload)} launches) to {args.output}"
    )
    return 0


def _cmd_obs(args) -> int:
    events = obs.load_chrome_trace(args.trace)
    metrics = obs.load_metrics_json(args.metrics) if args.metrics else None
    report = obs.build_run_report(events, metrics)
    print(report.to_text(top=args.top))
    return 0


_COMMANDS = {
    "sample": _cmd_sample,
    "compare": _cmd_compare,
    "suites": _cmd_suites,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    log_level = os.environ.get(obs.LOG_LEVEL_ENV)
    enable = bool(trace_out or metrics_out or log_level)
    if not enable:
        return _COMMANDS[args.command](args)

    # Stream events to stderr only when the user asked for a level, so
    # --trace-out alone keeps stdout/stderr exactly as before.
    session = obs.configure(
        log_level=log_level,
        event_stream=sys.stderr if log_level else None,
    )
    try:
        status = _COMMANDS[args.command](args)
    finally:
        if trace_out:
            count = session.write_trace(trace_out)
            print(f"wrote {count} trace events to {trace_out}", file=sys.stderr)
        if metrics_out:
            session.write_metrics(metrics_out)
            print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        obs.disable()
    return status


if __name__ == "__main__":
    sys.exit(main())
