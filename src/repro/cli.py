"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sample``    profile a workload, build a STEM+ROOT plan, report results
``compare``   run all five methods on one workload
``suites``    list available suites and workloads
``report``    transparency report for a freshly built plan
``trace``     write a sampled-kernel trace file for a plan
``obs``       run ledger & reports: ``report`` (pretty-print a saved
              trace), ``record``/``show``/``history`` (append to and
              inspect the run ledger), ``compare`` (diff two runs or a
              run against the ledger median), ``check`` (enforce
              ``[tool.repro.slo]`` budgets — the CI perf gate)
``faults``    describe a fault spec and dry-run it against a workload
``grid``      run a (method x workload x repetition) grid, resumably
``suite``     run a whole suite and print per-method Table-3 summaries
``sweep``     error-bound sensitivity sweep (Figure 11) with memoization
``dse``       design-space exploration grid (Table 4)
``lint``      AST-based invariant linter (determinism, cache keys, pool
              safety — see :mod:`repro.lint` and docs/static-analysis.md)
``analyze``   whole-program determinism analyzer: interprocedural seed
              flow, worker purity and cache-key soundness over the full
              module graph (see :mod:`repro.analysis` and
              docs/static-analysis.md)
``detsan``    cross-engine determinism smoke under the runtime
              sanitizer (scalar vs batch, cold vs warm, sequential vs
              parallel); every workload command also accepts
              ``--detsan`` to sanitize that run

Parallelism & memoization
-------------------------
``grid``, ``suite``, ``sweep`` and ``dse`` accept ``--jobs N`` (``0`` =
all cores) to fan cells across worker processes — results are
bit-identical to ``--jobs 1`` by construction.  ``--profile-cache DIR``
reuses collected profiles across runs and workers, and ``--fsync-every
N`` batches checkpoint durability barriers on large fast grids.
``sweep`` and ``dse`` additionally accept ``--sim-cache DIR`` (reuse raw
simulation results across epsilon points, DSE variants and re-runs — see
:mod:`repro.memo`); sequential sweeps share ROOT candidate split trees
across epsilon points automatically.  Caching never changes any number:
warm runs are bit-identical to cold ones.

Fault tolerance
---------------
Workload commands accept ``--faults SPEC`` (e.g.
``--faults "seed=3,sim_fail=0.1,nan=0.02"``), which routes the run
through the resilient pipeline: profiles are corrupted then repaired,
failing sample simulations are retried and, when permanently dead,
replaced by re-drawn cluster members with the error bound recomputed —
the output then reports *achieved* next to *requested* epsilon.  ``grid``
accepts ``--checkpoint PATH`` (plus ``--resume``) to persist per-cell
progress and continue a killed run exactly where it stopped.

Observability
-------------
Every workload command accepts ``--trace-out PATH`` (Chrome-trace JSON,
open in ``chrome://tracing``), ``--metrics-out PATH`` (counters, gauges
and histogram sketches as JSON) and ``--flame-out PATH``
(collapsed-stack flamegraph lines for flamegraph.pl / speedscope).  Any
of the flags — or setting the ``REPRO_LOG_LEVEL`` environment variable
(debug/info/warning/error) — enables the :mod:`repro.obs` layer for the
run; with ``REPRO_LOG_LEVEL`` set, structured JSONL events also stream
to stderr.  Without them, observability stays in no-op mode and runs
are bit-identical to uninstrumented ones.

Run ledger
----------
Plan/estimate verbs (``sample``, ``compare``, ``report``, ``trace``,
``grid``, ``suite``, ``sweep``, ``dse``) append one schema-versioned
run record — config fingerprint, git rev, per-phase self time, cache
hit rates, requested vs achieved ε, peak RSS per worker — to
``.repro/runs/ledger.jsonl``.  ``--runs-dir DIR`` moves it,
``--no-ledger`` (or an empty ``REPRO_RUNS_DIR``) disables it, and
``--run-label NAME`` names the run.  ``obs history``/``show`` inspect
the ledger, ``obs compare`` diffs runs, ``obs check`` enforces the
``[tool.repro.slo]`` budgets from pyproject.toml and exits non-zero on
breach.  Everything clock-dependent lives under the record's ``timing``
key, so identical runs are byte-identical elsewhere.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import obs
from .analysis import render_table
from .baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
)
from .core import StemRootSampler, evaluate_plan
from .core.report import build_report
from .errors import InfeasibleProfilingError, ProfileValidationError
from .hardware import PRESETS, get_preset
from .resilience import FaultInjector, FaultPlan, sample_resiliently
from .traces import write_sampled_trace
from .workloads import load_workload, suite_names
from .workloads.suites import SUITES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEM+ROOT kernel-level sampling for GPU simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a Chrome-trace JSON of the run's spans")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the run's metrics registry as JSON")
        p.add_argument("--flame-out", metavar="PATH", default=None,
                       help="write collapsed-stack self-time lines "
                            "(flamegraph.pl / speedscope format)")
        p.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="run-ledger directory (default .repro/runs, "
                            "or $REPRO_RUNS_DIR; empty disables)")
        p.add_argument("--no-ledger", action="store_true",
                       help="skip appending this run to the run ledger")
        p.add_argument("--run-label", metavar="LABEL", default=None,
                       help="free-form label stored in the run record")
        p.add_argument("--detsan", action="store_true",
                       help="enable the runtime determinism sanitizer "
                            "(records sync points, cross-checks engine "
                            "configurations; non-zero exit on divergence — "
                            "see repro detsan / docs/static-analysis.md)")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("suite", choices=suite_names())
        p.add_argument("workload")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size scale factor")
        p.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epsilon", type=float, default=0.05,
                       help="STEM error bound")
        add_obs_args(p)
        p.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault-injection spec, e.g. "
                            "'seed=3,sim_fail=0.1,nan=0.02' (see repro faults)")

    p_sample = sub.add_parser("sample", help="build and evaluate a STEM plan")
    add_workload_args(p_sample)

    p_compare = sub.add_parser("compare", help="run all five methods")
    add_workload_args(p_compare)
    p_compare.add_argument("--random-fraction", type=float, default=0.001)

    sub.add_parser("suites", help="list suites and workloads")

    p_faults = sub.add_parser(
        "faults", help="describe a fault spec (optionally dry-run it)"
    )
    p_faults.add_argument("spec", help="fault spec, e.g. 'seed=3,sim_fail=0.1'")
    p_faults.add_argument("--suite", choices=suite_names(), default=None)
    p_faults.add_argument("--workload", default=None)
    p_faults.add_argument("--scale", type=float, default=1.0)
    p_faults.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_faults.add_argument("--seed", type=int, default=0)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("suite", choices=suite_names())
        p.add_argument("workloads", nargs="*",
                       help="workload names (default: whole suite)")
        p.add_argument("--methods", default=None,
                       help="comma-separated method list (default: all five)")
        p.add_argument("--repetitions", type=int, default=3)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epsilon", type=float, default=0.05)
        p.add_argument("--faults", metavar="SPEC", default=None)
        p.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="persist per-cell progress to this JSONL file")
        p.add_argument("--resume", action="store_true",
                       help="continue from an existing checkpoint file")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores, default 1); "
                            "results are bit-identical to --jobs 1")
        p.add_argument("--profile-cache", metavar="DIR", default=None,
                       help="reuse collected profiles from this cache "
                            "directory across runs and workers")
        p.add_argument("--fsync-every", type=int, default=1,
                       help="fsync the checkpoint once per N rows "
                            "(default 1 = every row)")
        p.add_argument("--no-supervise", action="store_true",
                       help="disable the self-healing pool supervisor "
                            "(worker death then aborts the whole grid)")
        p.add_argument("--speculate", action="store_true",
                       help="speculatively duplicate straggling tasks on "
                            "idle workers (first copy wins; results are "
                            "still bit-identical)")
        p.add_argument("--max-task-kills", type=int, default=2,
                       help="kills attributed to one task before it is "
                            "quarantined as poisoned (default 2)")
        p.add_argument("--heartbeat-timeout", type=float, default=None,
                       help="seconds without a worker heartbeat before the "
                            "task is declared stalled and its worker killed "
                            "(default: no stall detection)")
        add_obs_args(p)

    p_grid = sub.add_parser(
        "grid", help="run a (method x workload x repetition) grid"
    )
    add_grid_args(p_grid)

    p_suite = sub.add_parser(
        "suite", help="run a whole suite and print per-method summaries"
    )
    add_grid_args(p_suite)

    p_sweep = sub.add_parser(
        "sweep", help="error-bound sensitivity sweep (Figure 11)"
    )
    p_sweep.add_argument("suite", nargs="?", choices=suite_names(),
                         default="casio")
    p_sweep.add_argument("--epsilons", default=None,
                         help="comma-separated error bounds "
                              "(default: 0.03,0.05,0.10,0.25)")
    p_sweep.add_argument("--repetitions", type=int, default=3)
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--ground-truth", choices=["profile", "sim"],
                         default="profile",
                         help="score plans against the nsys profile "
                              "(default) or the cycle simulator (the mode "
                              "where --sim-cache pays off)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (0 = all cores, default 1)")
    p_sweep.add_argument("--profile-cache", metavar="DIR", default=None,
                         help="reuse collected profiles from this directory")
    p_sweep.add_argument("--sim-cache", metavar="DIR", default=None,
                         help="reuse raw simulation results from this "
                              "directory across points and runs")
    p_sweep.add_argument("--fidelity", choices=["cycle", "analytical", "hybrid"],
                         default="cycle",
                         help="ground-truth tier for --ground-truth sim: "
                              "full cycle-level simulation (default), "
                              "calibrated analytical screening, or hybrid "
                              "screening with cycle-level escalation")
    p_sweep.add_argument("--escalation-budget", type=float, default=0.05,
                         help="fraction of invocations escalated to "
                              "cycle-level at hybrid fidelity (default 0.05)")
    p_sweep.add_argument("--out", metavar="PATH", default=None,
                         help="write points + cache hit rates as JSON")
    add_obs_args(p_sweep)

    p_dse = sub.add_parser(
        "dse", help="design-space exploration grid (Table 4)"
    )
    p_dse.add_argument("--workloads", default=None,
                       help="comma-separated workload names "
                            "(default: the paper's 17 reduced workloads)")
    p_dse.add_argument("--methods", default=None,
                       help="comma-separated method list "
                            "(default: pka,sieve,photon,stem)")
    p_dse.add_argument("--repetitions", type=int, default=3)
    p_dse.add_argument("--max-invocations", type=int, default=200,
                       help="reduce each workload to at most this many "
                            "invocations (paper Sec. 5.4)")
    p_dse.add_argument("--gpu", choices=sorted(PRESETS), default="rtx2080")
    p_dse.add_argument("--seed", type=int, default=0)
    p_dse.add_argument("--epsilon", type=float, default=0.05)
    p_dse.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores, default 1)")
    p_dse.add_argument("--profile-cache", metavar="DIR", default=None,
                       help="reuse collected profiles from this directory")
    p_dse.add_argument("--sim-cache", metavar="DIR", default=None,
                       help="reuse full variant simulations from this "
                            "directory across runs")
    p_dse.add_argument("--fidelity", choices=["cycle", "analytical", "hybrid"],
                       default="cycle",
                       help="per-variant ground-truth tier: full cycle-level "
                            "simulation (default, bit-identical to the "
                            "legacy path), calibrated analytical screening, "
                            "or hybrid screening with cycle-level escalation")
    p_dse.add_argument("--escalation-budget", type=float, default=None,
                       help="fraction of invocations escalated to "
                            "cycle-level at hybrid fidelity (default 0.05)")
    p_dse.add_argument("--faults", metavar="SPEC", default=None,
                       help="chaos-test the grid with a seeded fault plan, "
                            "e.g. 'seed=1,worker_kill=0.3,nan=0.02'")
    p_dse.add_argument("--out", metavar="PATH", default=None,
                       help="write results + cache hit rates as JSON")
    add_obs_args(p_dse)

    p_report = sub.add_parser("report", help="plan transparency report")
    add_workload_args(p_report)
    p_report.add_argument("--top", type=int, default=15)

    p_trace = sub.add_parser("trace", help="write a sampled-kernel trace")
    add_workload_args(p_trace)
    p_trace.add_argument("output", help="output .jsonl path")

    p_lint = sub.add_parser(
        "lint",
        help="run the repo invariant linter (exit 0 clean / 1 findings / "
             "2 internal error)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="run the whole-program determinism analyzer (seed flow, "
             "pool purity, cache-key soundness; exit 0 clean / 1 "
             "findings / 2 internal error)",
    )
    from .analysis.cli import add_analyze_arguments

    add_analyze_arguments(p_analyze)

    p_detsan = sub.add_parser(
        "detsan",
        help="cross-engine determinism smoke: scalar vs batch, cold vs "
             "warm cache, sequential vs parallel under the runtime "
             "sanitizer (exit 0 bit-identical / 1 divergence)",
    )
    from .analysis.detsan_smoke import add_detsan_arguments

    add_detsan_arguments(p_detsan)

    p_obs = sub.add_parser(
        "obs",
        help="run reports, the run ledger, and SLO checks "
             "(report/record/show/history/compare/check)",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    def add_runs_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="run-ledger directory (default .repro/runs, "
                            "or $REPRO_RUNS_DIR)")

    p_obs_report = obs_sub.add_parser(
        "report", help="pretty-print a run report from saved obs files"
    )
    p_obs_report.add_argument(
        "trace", help="Chrome-trace JSON written by --trace-out"
    )
    p_obs_report.add_argument("--metrics", default=None,
                              help="metrics JSON written by --metrics-out")
    p_obs_report.add_argument("--top", type=int, default=8,
                              help="how many hottest spans to list")

    p_obs_record = obs_sub.add_parser(
        "record", help="append a run record built from saved obs files "
                       "and/or explicit metrics"
    )
    p_obs_record.add_argument("name", help="command name stored in the record")
    p_obs_record.add_argument("--label", default="")
    p_obs_record.add_argument("--config", metavar="JSON", default=None,
                              help="JSON object of run-identity config")
    p_obs_record.add_argument("--trace", metavar="PATH", default=None,
                              help="Chrome-trace JSON to derive phase times")
    p_obs_record.add_argument("--metrics", metavar="PATH", default=None,
                              help="metrics JSON to derive counters")
    p_obs_record.add_argument("--metric", metavar="KEY=VALUE",
                              action="append", default=[],
                              help="extra numeric metric (repeatable)")
    add_runs_dir_arg(p_obs_record)

    p_obs_show = obs_sub.add_parser(
        "show", help="print one ledger record as JSON (default: latest)"
    )
    p_obs_show.add_argument("run_id", nargs="?", default=None,
                            help="run-id prefix (default: latest record)")
    add_runs_dir_arg(p_obs_show)

    p_obs_history = obs_sub.add_parser(
        "history", help="list ledger records, oldest first"
    )
    p_obs_history.add_argument("--run-id", default=None,
                               help="filter by run-id prefix")
    p_obs_history.add_argument("--command", dest="filter_command", default=None,
                               help="filter by recorded command")
    p_obs_history.add_argument("--limit", type=int, default=20,
                               help="show at most the last N matches")
    add_runs_dir_arg(p_obs_history)

    p_obs_compare = obs_sub.add_parser(
        "compare", help="diff two runs, or a run against the ledger "
                        "median of its earlier runs, with tolerances"
    )
    p_obs_compare.add_argument("baseline", nargs="?", default=None,
                               help="baseline run-id prefix (default: "
                                    "median of the candidate's history)")
    p_obs_compare.add_argument("candidate", nargs="?", default=None,
                               help="candidate run-id prefix (default: "
                                    "the latest record)")
    p_obs_compare.add_argument("--all", action="store_true",
                               help="show every compared metric, not just "
                                    "regressions")
    p_obs_compare.add_argument("--pyproject", metavar="PATH", default=None,
                               help="pyproject.toml carrying "
                                    "[tool.repro.slo] tolerances")
    add_runs_dir_arg(p_obs_compare)

    p_obs_check = obs_sub.add_parser(
        "check", help="enforce [tool.repro.slo] budgets over ledger "
                      "records; non-zero exit on breach (the CI perf gate)"
    )
    p_obs_check.add_argument("--last", type=int, default=0,
                             help="check only the last N records "
                                  "(default: all)")
    p_obs_check.add_argument("--command", dest="filter_command", default=None,
                             help="check only records of this command")
    p_obs_check.add_argument("--against-median", action="store_true",
                             help="additionally compare each group's "
                                  "latest record against the median of "
                                  "its earlier records")
    p_obs_check.add_argument("--pyproject", metavar="PATH", default=None,
                             help="pyproject.toml carrying [tool.repro.slo]")
    add_runs_dir_arg(p_obs_check)
    return parser


def _store(args) -> ProfileStore:
    workload = load_workload(args.suite, args.workload, scale=args.scale, seed=args.seed)
    return ProfileStore(workload, get_preset(args.gpu), seed=args.seed)


def _faulty_store(args) -> ProfileStore:
    """A store whose *observed* profile is corrupted (and repaired)."""
    fault_plan = _fault_plan(args)
    store = _store(args)
    if fault_plan is not None and fault_plan.corrupts_profiles:
        store.fault_injector = FaultInjector(fault_plan)
        store.validation = "repair"
    return store


def _fault_plan(args) -> Optional[FaultPlan]:
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    return plan if plan.enabled else None


def _cmd_sample(args) -> int:
    store = _store(args)
    fault_plan = _fault_plan(args)
    if fault_plan is None:
        plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
            store, seed=args.seed
        )
        result = evaluate_plan(plan, store.execution_times())
        print(
            render_table(
                ["workload", "launches", "clusters", "samples", "error %", "speedup x", "bound %"],
                [[
                    store.workload.name,
                    len(store.workload),
                    plan.num_clusters,
                    plan.num_samples,
                    result.error_percent,
                    result.speedup,
                    plan.metadata["predicted_error"] * 100,
                ]],
                title="STEM+ROOT sampled simulation",
            )
        )
        return 0

    res = sample_resiliently(
        store,
        StemRootSampler(epsilon=args.epsilon),
        fault_plan=fault_plan,
        seed=args.seed,
    )
    print(
        render_table(
            [
                "workload", "launches", "clusters", "samples", "error %",
                "speedup x", "requested eps %", "achieved eps %",
                "quarantined", "retries",
            ],
            [[
                store.workload.name,
                len(store.workload),
                res.plan.num_clusters,
                res.plan.num_samples,
                res.result.error_percent,
                res.result.speedup,
                res.requested_epsilon * 100,
                res.achieved_epsilon * 100,
                res.quarantined,
                res.retries,
            ]],
            title="STEM+ROOT sampled simulation (fault-injected)",
        )
    )
    if res.degraded:
        print(
            f"degraded mode: {res.quarantined} samples quarantined, "
            f"{res.redrawn} re-drawn, "
            f"{'re-allocated' if res.reallocated else 'original allocation'}; "
            f"profile {'repaired' if res.profile_health.repaired else 'clean'}"
        )
    return 0


def _cmd_compare(args) -> int:
    store = _faulty_store(args)
    # Plans are built from the (possibly corrupted, then repaired)
    # observed profile but scored against the clean ground truth.
    store.execution_times()
    times = store.true_execution_times()
    samplers = [
        RandomSampler(args.random_fraction),
        PkaSampler(),
        SieveSampler(),
        PhotonSampler(),
        StemRootSampler(epsilon=args.epsilon),
    ]
    rows = []
    for sampler in samplers:
        try:
            if hasattr(sampler, "build_plan_from_store"):
                plan = sampler.build_plan_from_store(store, seed=args.seed)
            else:
                plan = sampler.build_plan(store, seed=args.seed)
        except (InfeasibleProfilingError, ProfileValidationError) as err:
            # Infeasible profiling and corrupt profiles are expected,
            # reportable outcomes; anything else is a bug and propagates.
            rows.append([sampler.method, float("nan"), float("nan"), str(err)[:40]])
            continue
        result = evaluate_plan(plan, times)
        rows.append([plan.method, result.error_percent, result.speedup, ""])
    print(
        render_table(
            ["method", "error %", "speedup x", "note"],
            rows,
            title=f"Sampling methods on {store.workload.name}",
        )
    )
    return 0


def _cmd_suites(_args) -> int:
    rows = []
    for suite, registry in sorted(SUITES.items()):
        for name in registry.names():
            rows.append([suite, name])
    print(render_table(["suite", "workload"], rows, title="Available workloads"))
    return 0


def _cmd_report(args) -> int:
    store = _faulty_store(args)
    times = store.execution_times()
    sampler = StemRootSampler(epsilon=args.epsilon)
    plan = sampler.build_plan(store.workload, times, seed=args.seed)
    # Recover cluster membership for exact per-cluster statistics.
    import numpy as np

    rng = np.random.default_rng(args.seed)
    labeled = sampler.cluster(store.workload, times, rng=rng)
    counter = {}
    members = {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    report = build_report(plan, times, cluster_members=members)
    print(report.to_text(top=args.top))
    return 0


def _cmd_trace(args) -> int:
    store = _faulty_store(args)
    plan = StemRootSampler(epsilon=args.epsilon).build_plan_from_store(
        store, seed=args.seed
    )
    count = write_sampled_trace(args.output, store.workload, plan)
    print(
        f"wrote {count} sampled-kernel records "
        f"(of {len(store.workload)} launches) to {args.output}"
    )
    return 0


#: Commands whose runs are appended to the run ledger by default.
_LEDGERED = {"sample", "compare", "report", "trace", "grid", "suite",
             "sweep", "dse"}

#: argparse fields that are plumbing, not run identity: they never
#: change results, so they stay out of the config fingerprint (and
#: therefore out of run_id).
_NON_IDENTITY_ARGS = {
    "command", "obs_command", "trace_out", "metrics_out", "flame_out",
    "runs_dir", "no_ledger", "run_label", "out", "output", "checkpoint",
    "resume", "fsync_every", "profile_cache", "sim_cache", "top",
    # Supervision knobs never change results (quarantine excepted, and a
    # quarantined cell is visible in the rows themselves, not run_id).
    "no_supervise", "speculate", "max_task_kills", "heartbeat_timeout",
    # The sanitizer observes results, never changes them.
    "detsan",
}


def _resolve_runs_dir(args) -> Optional[str]:
    """Ledger directory for this invocation, or None when disabled.

    Precedence: ``--no-ledger`` > ``--runs-dir`` > ``$REPRO_RUNS_DIR``
    (empty value disables) > ``.repro/runs``.
    """
    if getattr(args, "no_ledger", False):
        return None
    explicit = getattr(args, "runs_dir", None)
    if explicit is not None:
        return explicit or None
    env = os.environ.get(obs.RUNS_DIR_ENV)
    if env is not None:
        return env or None
    return obs.DEFAULT_RUNS_DIR


def _run_config(args) -> dict:
    """The run's identity config: every result-relevant CLI argument."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in _NON_IDENTITY_ARGS
    }


def _default_label(args) -> str:
    label = getattr(args, "run_label", None)
    if label:
        return str(label)
    parts = [str(p) for p in (getattr(args, "suite", None),
                              getattr(args, "workload", None)) if p]
    return "/".join(parts)


def _obs_ledger(args) -> "obs.RunLedger":
    explicit = getattr(args, "runs_dir", None)
    if explicit:
        return obs.RunLedger(explicit)
    env = os.environ.get(obs.RUNS_DIR_ENV)
    return obs.RunLedger(env or obs.DEFAULT_RUNS_DIR)


def _cmd_obs_report(args) -> int:
    events = obs.load_chrome_trace(args.trace)
    metrics = obs.load_metrics_json(args.metrics) if args.metrics else None
    report = obs.build_run_report(events, metrics)
    print(report.to_text(top=args.top))
    return 0


def _cmd_obs_record(args) -> int:
    import json

    report = None
    snapshot = None
    if args.trace:
        metrics = obs.load_metrics_json(args.metrics) if args.metrics else None
        report = obs.build_run_report(obs.load_chrome_trace(args.trace), metrics)
    if args.metrics:
        snapshot = obs.load_metrics_json(args.metrics)
    extra = {}
    for item in args.metric:
        if "=" not in item:
            print(f"--metric expects KEY=VALUE, got {item!r}", file=sys.stderr)
            return 2
        key, _, raw = item.partition("=")
        try:
            extra[key.strip()] = float(raw)
        except ValueError:
            print(f"--metric value must be numeric, got {item!r}",
                  file=sys.stderr)
            return 2
    config = json.loads(args.config) if args.config else {}
    if not isinstance(config, dict):
        print("--config must be a JSON object", file=sys.stderr)
        return 2
    record = obs.build_run_record(
        command=args.name,
        label=args.label,
        config=config,
        report=report,
        snapshot=snapshot,
        extra_metrics=extra,
    )
    ledger = _obs_ledger(args)
    ledger.append(record)
    print(f"recorded run {record.run_id} (seq {record.timing['seq']}) "
          f"to {ledger.path}")
    return 0


def _cmd_obs_show(args) -> int:
    import json

    ledger = _obs_ledger(args)
    record = ledger.latest(run_id=args.run_id)
    if record is None:
        what = f"run id {args.run_id!r}" if args.run_id else "any record"
        print(f"no ledger record matching {what} in {ledger.path}",
              file=sys.stderr)
        return 1
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_obs_history(args) -> int:
    ledger = _obs_ledger(args)
    records = ledger.history(run_id=args.run_id, command=args.filter_command)
    if not records:
        print(f"no ledger records in {ledger.path}", file=sys.stderr)
        return 1
    if args.limit > 0:
        records = records[-args.limit:]
    rows = []
    for r in records:
        rows.append([
            r.timing.get("seq", "-"),
            r.run_id[:10],
            r.command,
            r.label or "-",
            r.timing.get("wall_s", float("nan")),
            r.metrics.get("status", "-"),
            (r.context.get("git_rev") or "")[:10] or "-",
        ])
    print(
        render_table(
            ["seq", "run id", "command", "label", "wall s", "status", "rev"],
            rows,
            title=f"run ledger: {ledger.path} ({len(rows)} shown)",
        )
    )
    return 0


def _cmd_obs_compare(args) -> int:
    from .obs.slo import (
        comparable_leaves,
        compare_records,
        median_record_leaves,
        render_compare,
    )

    budgets = obs.load_slo_budgets(args.pyproject)
    ledger = _obs_ledger(args)
    # One positional id = candidate; two = baseline then candidate.
    if args.baseline is not None and args.candidate is None:
        candidate_id, baseline_id = args.baseline, None
    else:
        candidate_id, baseline_id = args.candidate, args.baseline
    candidate = ledger.latest(run_id=candidate_id)
    if candidate is None:
        print("no candidate record in the ledger", file=sys.stderr)
        return 2
    if baseline_id is not None:
        baseline_record = ledger.latest(run_id=baseline_id)
        if baseline_record is None:
            print(f"no baseline record matching {baseline_id!r}",
                  file=sys.stderr)
            return 2
        baseline = comparable_leaves(baseline_record)
        label_base = f"run {baseline_record.run_id[:8]}"
    else:
        history = ledger.history(run_id=candidate.run_id)
        prior = [r for r in history
                 if r.timing.get("seq") != candidate.timing.get("seq")]
        if not prior:
            print(
                f"run {candidate.run_id[:8]} has no earlier records to "
                "compare against; record more runs or name a baseline",
                file=sys.stderr,
            )
            return 2
        baseline = median_record_leaves(prior)
        label_base = f"median of {len(prior)}"
    rows = compare_records(candidate, baseline, budgets)
    print(f"candidate: run {candidate.run_id[:8]} ({candidate.command}"
          f"{', ' + candidate.label if candidate.label else ''})")
    print(render_compare(rows, only_breaches=not args.all,
                         label_base=label_base, label_cand="candidate"))
    return 1 if any(r.breach for r in rows) else 0


def _cmd_obs_check(args) -> int:
    from .obs.slo import (
        check_record,
        compare_records,
        median_record_leaves,
        render_compare,
        render_violations,
    )

    budgets = obs.load_slo_budgets(args.pyproject)
    ledger = _obs_ledger(args)
    records = ledger.history(command=args.filter_command)
    if args.last > 0:
        records = records[-args.last:]
    if not records:
        print(f"no ledger records to check in {ledger.path}", file=sys.stderr)
        return 2
    if budgets.is_empty():
        print("no [tool.repro.slo] budgets configured; nothing to enforce",
              file=sys.stderr)
        return 2

    violations = []
    for record in records:
        violations.extend(check_record(record, budgets))
    print(render_violations(violations, checked=len(records)))

    regressions = 0
    if args.against_median:
        groups = ledger.groups()
        for run_id, group in sorted(groups.items()):
            latest = group[-1]
            if args.filter_command and latest.command != args.filter_command:
                continue
            prior = group[:-1]
            if not prior:
                continue
            rows = compare_records(
                latest, median_record_leaves(prior), budgets
            )
            breached = [r for r in rows if r.breach]
            if breached:
                regressions += len(breached)
                print(f"\nregressions vs median — run {run_id[:8]} "
                      f"({latest.command}):")
                print(render_compare(breached, only_breaches=True,
                                     label_base=f"median of {len(prior)}",
                                     label_cand="latest"))
    return 1 if (violations or regressions) else 0


_OBS_COMMANDS = {
    "report": _cmd_obs_report,
    "record": _cmd_obs_record,
    "show": _cmd_obs_show,
    "history": _cmd_obs_history,
    "compare": _cmd_obs_compare,
    "check": _cmd_obs_check,
}


def _cmd_obs(args) -> int:
    from .errors import ReproError

    try:
        return _OBS_COMMANDS[args.obs_command](args)
    except ReproError as err:
        print(f"repro obs: {err}", file=sys.stderr)
        return 2


def _cmd_faults(args) -> int:
    plan = FaultPlan.from_spec(args.spec)
    print("fault plan:")
    print(plan.describe())
    if args.suite is None or args.workload is None:
        if not plan.enabled:
            return 0
        print("\n(pass --suite and --workload to dry-run the plan "
              "against a profile)")
        return 0
    if not plan.enabled:
        print("\nnothing to dry-run: all rates are zero")
        return 0

    import numpy as np

    workload = load_workload(
        args.suite, args.workload, scale=args.scale, seed=args.seed
    )
    store = ProfileStore(workload, get_preset(args.gpu), seed=args.seed)
    injector = FaultInjector(plan)
    clean = store.execution_times()
    corrupted = injector.corrupt_times(clean)
    finite = np.isfinite(corrupted)
    rows = [
        ["profile entries", len(clean)],
        ["after truncation", len(corrupted)],
        ["NaN", int(np.isnan(corrupted).sum())],
        ["inf", int(np.isinf(corrupted).sum())],
        ["negative", int((finite & (corrupted < 0)).sum())],
        ["zero (dropped)", int((finite & (corrupted == 0)).sum())],
    ]
    if plan.fails_simulations:
        decisions = [
            injector.simulation_decision(i, attempt=1).kind
            for i in range(len(workload))
        ]
        rows.append(["sim fail (attempt 1)", decisions.count("fail")])
        rows.append(["sim perm-fail", decisions.count("perm_fail")])
        rows.append(["sim hang (attempt 1)", decisions.count("hang")])
    print(
        render_table(
            ["fault", "count"],
            rows,
            title=f"dry run on {workload.name} (deterministic for seed "
                  f"{plan.seed})",
        )
    )
    return 0


def _run_grid(args):
    """Shared grid driver for ``grid`` and ``suite``.

    Returns the result rows, or an integer exit status on refusal.
    """
    from .experiments.runner import METHODS, ExperimentConfig, run_suite
    from .resilience import GridCheckpoint

    if args.checkpoint and not args.resume and os.path.exists(args.checkpoint) \
            and os.path.getsize(args.checkpoint) > 0:
        print(
            f"checkpoint {args.checkpoint!r} already exists; pass --resume "
            "to continue it or delete the file to start over",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        gpu=get_preset(args.gpu),
        repetitions=args.repetitions,
        base_seed=args.seed,
        epsilon=args.epsilon,
        workload_scale=args.scale,
        fault_plan=_fault_plan(args),
    )
    checkpoint = None
    if args.checkpoint:
        checkpoint = GridCheckpoint(
            args.checkpoint,
            config=config.fingerprint(),
            fsync_every=args.fsync_every,
        )
    profile_cache = None
    if args.profile_cache:
        from .parallel import ProfileCache

        profile_cache = ProfileCache(args.profile_cache)
        if config.fault_plan is not None and config.fault_plan.corrupts_cache:
            from .resilience import FaultInjector

            profile_cache.fault_injector = FaultInjector(config.fault_plan)
    from .parallel import SupervisionPolicy

    policy = SupervisionPolicy(
        enabled=not args.no_supervise,
        speculate=args.speculate,
        max_task_kills=args.max_task_kills,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    methods = args.methods.split(",") if args.methods else METHODS
    try:
        return run_suite(
            args.suite,
            config=config,
            methods=methods,
            workload_names=args.workloads or None,
            checkpoint=checkpoint,
            jobs=args.jobs,
            profile_cache=profile_cache,
            policy=policy,
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _cmd_grid(args) -> int:
    rows = _run_grid(args)
    if isinstance(rows, int):
        return rows
    print(
        render_table(
            ["workload", "method", "rep", "error %", "speedup x", "feasible"],
            [
                [r.workload, r.method, r.repetition, r.error_percent,
                 r.speedup, "yes" if r.feasible else "N/A"]
                for r in rows
            ],
            title=f"grid: {args.suite} ({len(rows)} cells)",
        )
    )
    if args.checkpoint:
        print(f"progress checkpointed to {args.checkpoint}", file=sys.stderr)
    return 0


def _cmd_suite(args) -> int:
    from .experiments.speedup_error import summarize

    rows = _run_grid(args)
    if isinstance(rows, int):
        return rows
    summaries = summarize(rows)
    print(
        render_table(
            ["suite", "method", "error %", "speedup x", "feasible"],
            [
                [s.suite, s.method, s.error_percent, s.speedup,
                 "yes" if s.feasible else "N/A"]
                for s in summaries
            ],
            title=f"suite summary: {args.suite} "
                  f"({len(rows)} cells, jobs={args.jobs})",
        )
    )
    if args.checkpoint:
        print(f"progress checkpointed to {args.checkpoint}", file=sys.stderr)
    return 0


def _memo_caches(args, jobs: int):
    """Build the (profile, sim, tree) caches a memoized command asked for."""
    profile_cache = None
    if getattr(args, "profile_cache", None):
        from .parallel import ProfileCache

        profile_cache = ProfileCache(args.profile_cache)
    sim_cache = None
    if getattr(args, "sim_cache", None):
        from .memo import SimResultCache

        sim_cache = SimResultCache(args.sim_cache)
    tree_cache = None
    if jobs == 1:
        from .memo import SplitTreeCache

        tree_cache = SplitTreeCache()
    return profile_cache, sim_cache, tree_cache


def _memo_stats(profile_cache, sim_cache, tree_cache):
    """Per-stage hit/miss counters as one JSON-ready dict."""
    out = {}
    if profile_cache is not None:
        out["profile_cache"] = {
            "hits": profile_cache.hits,
            "misses": profile_cache.misses,
            "stores": profile_cache.stores,
        }
    if sim_cache is not None:
        out["sim_cache"] = sim_cache.stats()
        total = sim_cache.hits + sim_cache.misses
        out["sim_cache"]["hit_rate"] = sim_cache.hits / total if total else 0.0
    if tree_cache is not None:
        out["tree_cache"] = tree_cache.stats()
    return out


def _print_memo_stats(stats) -> None:
    if not stats:
        return
    parts = []
    for stage, counters in stats.items():
        hits = counters.get("hits", 0)
        misses = counters.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "-"
        parts.append(f"{stage}: {hits}/{total} hits ({rate})")
    print("memo: " + "; ".join(parts), file=sys.stderr)


def _cmd_sweep(args) -> int:
    import dataclasses
    import json

    from .experiments.error_bound_sweep import (
        DEFAULT_EPSILONS,
        run_error_bound_sweep,
    )
    from .experiments.runner import ExperimentConfig

    epsilons = (
        [float(e) for e in args.epsilons.split(",")]
        if args.epsilons
        else list(DEFAULT_EPSILONS)
    )
    config = ExperimentConfig(
        gpu=get_preset(args.gpu),
        repetitions=args.repetitions,
        base_seed=args.seed,
        workload_scale=args.scale,
    )
    profile_cache, sim_cache, tree_cache = _memo_caches(args, args.jobs)
    points = run_error_bound_sweep(
        epsilons,
        config=config,
        suite=args.suite,
        jobs=args.jobs,
        profile_cache=profile_cache,
        sim_cache=sim_cache,
        ground_truth=args.ground_truth,
        tree_cache=tree_cache,
        fidelity=args.fidelity,
        escalation_budget=args.escalation_budget,
    )
    print(
        render_table(
            ["epsilon %", "speedup x", "error %", "mean samples"],
            [
                [p.epsilon * 100, p.speedup, p.error_percent, p.mean_samples]
                for p in points
            ],
            title=f"error-bound sweep: {args.suite} "
                  f"({len(epsilons)} points, truth={args.ground_truth})",
        )
    )
    stats = _memo_stats(profile_cache, sim_cache, tree_cache)
    _print_memo_stats(stats)
    if args.out:
        payload = {
            "suite": args.suite,
            "epsilons": epsilons,
            "ground_truth": args.ground_truth,
            "fidelity": args.fidelity,
            "escalation_budget": args.escalation_budget,
            "repetitions": args.repetitions,
            "seed": args.seed,
            "scale": args.scale,
            "points": [dataclasses.asdict(p) for p in points],
            "memo": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote sweep results to {args.out}", file=sys.stderr)
    return 0


def _cmd_dse(args) -> int:
    import dataclasses
    import json

    from .experiments.dse import (
        default_dse_workloads,
        run_dse,
        table4_summary,
        VARIANT_LABELS,
    )

    specs = default_dse_workloads(max_invocations=args.max_invocations)
    if args.workloads:
        wanted = {name.strip() for name in args.workloads.split(",")}
        specs = [spec for spec in specs if spec.name in wanted]
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            print(
                f"unknown DSE workloads: {', '.join(sorted(unknown))} "
                f"(available: {', '.join(s.name for s in default_dse_workloads())})",
                file=sys.stderr,
            )
            return 2
    methods = args.methods.split(",") if args.methods else None
    profile_cache, sim_cache, _ = _memo_caches(args, args.jobs)
    results = run_dse(
        specs,
        baseline_gpu=get_preset(args.gpu),
        methods=methods,
        repetitions=args.repetitions,
        seed=args.seed,
        epsilon=args.epsilon,
        jobs=args.jobs,
        profile_cache=profile_cache,
        sim_cache=sim_cache,
        fidelity=args.fidelity,
        escalation_budget=args.escalation_budget,
        fault_plan=_fault_plan(args),
    )
    table = table4_summary(results)
    method_order = methods or ["pka", "sieve", "photon", "stem"]
    print(
        render_table(
            ["variant"] + [f"{m} err %" for m in method_order],
            [
                [variant] + [table.get(variant, {}).get(m, float("nan"))
                             for m in method_order]
                for variant in VARIANT_LABELS
                if variant in table
            ],
            title=f"DSE error by variant ({len(specs)} workloads, "
                  f"{args.repetitions} reps)",
        )
    )
    stats = _memo_stats(profile_cache, sim_cache, None)
    _print_memo_stats(stats)
    if args.out:
        payload = {
            "workloads": [spec.name for spec in specs],
            "methods": method_order,
            "repetitions": args.repetitions,
            "seed": args.seed,
            "epsilon": args.epsilon,
            "fidelity": args.fidelity,
            "escalation_budget": args.escalation_budget,
            "results": [dataclasses.asdict(r) for r in results],
            "table": table,
            "memo": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote DSE results to {args.out}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from .lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_analyze(args) -> int:
    from .analysis.cli import run_analyze_command

    return run_analyze_command(args)


def _cmd_detsan(args) -> int:
    from .analysis.detsan_smoke import run_detsan_command

    return run_detsan_command(args)


_COMMANDS = {
    "sample": _cmd_sample,
    "compare": _cmd_compare,
    "suites": _cmd_suites,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
    "faults": _cmd_faults,
    "grid": _cmd_grid,
    "suite": _cmd_suite,
    "sweep": _cmd_sweep,
    "dse": _cmd_dse,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "detsan": _cmd_detsan,
}


def _dispatch(args) -> int:
    """Run one command, honouring ``--detsan`` around it.

    With the sanitizer on (flag or ``REPRO_DETSAN=1``), the run's
    coverage report lands on stderr and any divergence turns a
    successful exit into status 1 — determinism violations fail runs
    exactly like wrong results would.
    """
    from .analysis import detsan

    if getattr(args, "detsan", False):
        detsan.enable()
    status = _COMMANDS[args.command](args)
    sanitizer = detsan.get_sanitizer()
    if sanitizer is not None and sanitizer.records:
        print(sanitizer.report(), file=sys.stderr, end="")
        if sanitizer.divergences and status == 0:
            status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    flame_out = getattr(args, "flame_out", None)
    log_level = os.environ.get(obs.LOG_LEVEL_ENV)
    runs_dir = _resolve_runs_dir(args) if args.command in _LEDGERED else None
    enable = bool(trace_out or metrics_out or flame_out or log_level or runs_dir)
    if not enable:
        return _dispatch(args)

    # Stream events to stderr only when the user asked for a level, so
    # --trace-out alone keeps stdout/stderr exactly as before.
    session = obs.configure(
        log_level=log_level,
        event_stream=sys.stderr if log_level else None,
    )
    monitor = obs.ResourceMonitor()
    try:
        with monitor:
            status = _dispatch(args)
    finally:
        if trace_out:
            count = session.write_trace(trace_out)
            print(f"wrote {count} trace events to {trace_out}", file=sys.stderr)
        if metrics_out:
            session.write_metrics(metrics_out)
            print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        if flame_out:
            count = session.write_flame(flame_out)
            print(f"wrote {count} collapsed stacks to {flame_out}",
                  file=sys.stderr)
        obs.disable()
    if runs_dir is not None and status == 0:
        record = obs.build_run_record(
            command=args.command,
            label=_default_label(args),
            config=_run_config(args),
            session=session,
            resources=monitor.snapshot(),
            status=status,
        )
        ledger = obs.RunLedger(runs_dir)
        ledger.append(record)
        print(f"ledger: run {record.run_id} appended to {ledger.path}",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
