"""Typed exception hierarchy (re-exported from :mod:`repro.errors`).

The canonical definitions live in the top-level leaf module
:mod:`repro.errors` so that :mod:`repro.core` and :mod:`repro.baselines`
can raise them without importing the resilience package (which itself
imports core modules).  Importing them from here is the
subsystem-flavoured spelling: ``from repro.resilience import
SimulationFailure``.
"""

from ..errors import (
    CheckpointError,
    EstimationError,
    GridExecutionError,
    InfeasibleProfilingError,
    PoisonedTaskError,
    ProfileValidationError,
    ReproError,
    SimulationFailure,
    SimulationTimeout,
    WorkerCrashError,
)

__all__ = [
    "ReproError",
    "InfeasibleProfilingError",
    "ProfileValidationError",
    "SimulationFailure",
    "SimulationTimeout",
    "EstimationError",
    "CheckpointError",
    "WorkerCrashError",
    "PoisonedTaskError",
    "GridExecutionError",
]
