"""Checkpoint/resume for experiment grids.

A ``run_suite`` grid is (workload x method x repetition) independent
cells, each a pure function of its seed — which makes the grid trivially
resumable *if* progress survives the process.  :class:`GridCheckpoint`
appends one JSON line per completed cell to a progress file, flushed
immediately, so a killed run loses at most the cell in flight.

File format (JSONL):

* line 1 — a header ``{"kind": "header", "version": 1, "config": {...}}``
  fingerprinting the experiment configuration; resuming under a
  different configuration raises :class:`CheckpointError` instead of
  silently mixing incompatible rows;
* every other line — ``{"kind": "row", "key": [suite, workload, method,
  repetition], "row": {...}}``.

Resume is exact, not approximate: completed cells are *replayed from the
file* in grid-iteration order, and only missing cells are recomputed.
Because each cell's RNG is derived from ``base_seed`` and the cell's own
repetition (never from shared mutable state), a resumed grid is
row-for-row identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from .. import obs
from .errors import CheckpointError

__all__ = ["GridCheckpoint"]

#: Bump when the line format changes incompatibly.
CHECKPOINT_VERSION = 1

Key = Tuple[str, str, str, int]


class GridCheckpoint:
    """Append-only JSONL progress log for experiment grids.

    ``fsync_every`` batches the per-row ``fsync``: every line is still
    *written and flushed* immediately (a crashed run's file stays intact
    up to the OS page cache), but the durability barrier is paid once per
    ``N`` rows instead of per row.  The default of 1 keeps the original
    row-for-row durability; large fast grids can raise it to amortize the
    dominant syscall.  The header and :meth:`close` always sync.
    """

    def __init__(
        self,
        path: str,
        config: Optional[Dict[str, object]] = None,
        fsync_every: int = 1,
    ):
        self.path = path
        self.config: Dict[str, object] = dict(config or {})
        self.fsync_every = max(1, int(fsync_every))
        self._rows_since_fsync = 0
        self._rows: Dict[Key, Dict[str, object]] = {}
        self._fh = None
        if os.path.exists(path) and os.path.getsize(path) > 0:
            self._load()
        else:
            self._open_fresh()

    # -- loading -------------------------------------------------------------
    def _load(self) -> None:
        header = None
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A run killed mid-write leaves at most one torn final
                    # line; drop it rather than refusing to resume.
                    if lineno > 1:
                        obs.log_event(
                            "resilience.checkpoint_torn_line",
                            level="warning",
                            path=self.path,
                            line=lineno,
                        )
                        continue
                    raise CheckpointError(
                        f"checkpoint {self.path!r} has an unreadable header"
                    )
                kind = payload.get("kind")
                if lineno == 1:
                    if kind != "header":
                        raise CheckpointError(
                            f"checkpoint {self.path!r} does not start with a "
                            "header line"
                        )
                    header = payload
                    continue
                if kind != "row":
                    continue
                key = tuple(payload["key"])
                self._rows[(str(key[0]), str(key[1]), str(key[2]), int(key[3]))] = (
                    payload["row"]
                )
        if header is None:
            raise CheckpointError(f"checkpoint {self.path!r} is empty")
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has version {header.get('version')}, "
                f"this build writes version {CHECKPOINT_VERSION}"
            )
        stored = header.get("config") or {}
        if self.config and stored and stored != self.config:
            diffs = sorted(
                k
                for k in set(stored) | set(self.config)
                if stored.get(k) != self.config.get(k)
            )
            raise CheckpointError(
                f"checkpoint {self.path!r} was written under a different "
                f"experiment configuration (differs in: {', '.join(diffs)}); "
                "refusing to mix rows — delete it or match the config"
            )
        if not self.config:
            self.config = dict(stored)
        self._fh = open(self.path, "a", encoding="utf-8")
        obs.log_event(
            "resilience.checkpoint_resumed",
            path=self.path,
            completed_cells=len(self._rows),
        )

    def _open_fresh(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "config": self.config,
            }
        )

    # -- writing -------------------------------------------------------------
    def _write_line(self, payload: Dict[str, object], sync: bool = True) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(payload) + "\n")
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())
            self._rows_since_fsync = 0

    def record(
        self,
        suite: str,
        workload: str,
        method: str,
        repetition: int,
        row: Dict[str, object],
    ) -> None:
        """Persist one completed grid cell."""
        key: Key = (suite, workload, method, int(repetition))
        if key in self._rows:
            return
        self._rows[key] = dict(row)
        self._rows_since_fsync += 1
        self._write_line(
            {"kind": "row", "key": list(key), "row": dict(row)},
            sync=self._rows_since_fsync >= self.fsync_every,
        )
        obs.inc("resilience.checkpoint_cells_written")

    # -- querying ------------------------------------------------------------
    def get(
        self, suite: str, workload: str, method: str, repetition: int
    ) -> Optional[Dict[str, object]]:
        return self._rows.get((suite, workload, method, int(repetition)))

    def __contains__(self, key: Key) -> bool:
        return (key[0], key[1], key[2], int(key[3])) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def flush(self) -> None:
        """Force the pending durability barrier without closing.

        Used by the parallel grid's failure path: before a
        :class:`~repro.errors.GridExecutionError` propagates, every
        already-recorded cell is fsynced so the salvage survives
        whatever kills the process next.
        """
        if self._fh is not None and self._rows_since_fsync:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._rows_since_fsync = 0

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "GridCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
