"""Deterministic, seeded fault injection for the sampling pipeline.

A :class:`FaultPlan` is a declarative description of *what* can go wrong
and at what rate; a :class:`FaultInjector` turns it into concrete,
reproducible decisions.  Every decision is derived from a fresh
``np.random.Generator`` seeded by ``(plan.seed, salt, key...)``, so

* the same plan always corrupts the same profile entries and fails the
  same sample simulations, regardless of call order or thread count, and
* two plans differing only in ``seed`` inject statistically identical
  but positionally independent faults.

Fault classes (all rates are probabilities in ``[0, 1]``):

==================  =========================================================
``nan_rate``        profile entry replaced by NaN (profiler glitch)
``inf_rate``        profile entry replaced by +inf (timer overflow)
``negative_rate``   profile entry negated (clock skew between timestamps)
``drop_rate``       profile entry zeroed (invocation missed by the profiler)
``truncate_fraction`` trailing fraction of the profile removed entirely
                    (profiler died mid-run — a truncated trace)
``sim_fail_rate``   one simulation *attempt* crashes (transient)
``sim_perm_fail_rate`` an invocation's simulation always crashes (corrupt
                    trace record — retries cannot help)
``sim_hang_rate``   one simulation attempt hangs for ``hang_seconds``
``worker_kill_rate`` one parallel task attempt SIGKILLs its own worker
                    process (OOM-killer / hard crash; drawn per attempt,
                    so the supervisor's re-dispatch can succeed)
``worker_stall_rate`` one parallel task attempt stalls for
                    ``worker_stall_s`` real seconds before proceeding
                    (a wedged worker, detectable via heartbeats)
``cache_corrupt_rate`` a cache entry's on-disk bytes are flipped right
                    after the atomic write (bit rot / torn storage),
                    exercising checksum verification on read
==================  =========================================================

Faults are **off by default**: ``FaultPlan()`` has every rate at zero and
``FaultInjector`` refuses to build from a disabled plan, so the zero-fault
pipeline never consults an injector and stays bit-identical.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Optional

import numpy as np

from .. import obs
from .errors import SimulationFailure

__all__ = ["FaultPlan", "FaultInjector", "SimDecision", "WorkerDecision"]

# Seed-sequence salts keeping every decision family independent.
_SALT_PROFILE = 101
_SALT_PERM = 211
_SALT_FAIL = 307
_SALT_HANG = 401
_SALT_KILL = 503
_SALT_STALL = 601
_SALT_CACHE = 701

#: Aliases accepted by :meth:`FaultPlan.from_spec`.
_SPEC_ALIASES: Dict[str, str] = {
    "seed": "seed",
    "nan": "nan_rate",
    "nan_rate": "nan_rate",
    "inf": "inf_rate",
    "inf_rate": "inf_rate",
    "neg": "negative_rate",
    "negative": "negative_rate",
    "negative_rate": "negative_rate",
    "drop": "drop_rate",
    "drop_rate": "drop_rate",
    "truncate": "truncate_fraction",
    "truncate_fraction": "truncate_fraction",
    "sim_fail": "sim_fail_rate",
    "sim_fail_rate": "sim_fail_rate",
    "sim_perm_fail": "sim_perm_fail_rate",
    "sim_perm_fail_rate": "sim_perm_fail_rate",
    "perm_fail": "sim_perm_fail_rate",
    "sim_hang": "sim_hang_rate",
    "sim_hang_rate": "sim_hang_rate",
    "hang": "sim_hang_rate",
    "hang_seconds": "hang_seconds",
    "worker_kill": "worker_kill_rate",
    "worker_kill_rate": "worker_kill_rate",
    "kill": "worker_kill_rate",
    "worker_stall": "worker_stall_rate",
    "worker_stall_rate": "worker_stall_rate",
    "stall": "worker_stall_rate",
    "worker_stall_s": "worker_stall_s",
    "stall_s": "worker_stall_s",
    "cache_corrupt": "cache_corrupt_rate",
    "cache_corrupt_rate": "cache_corrupt_rate",
    "corrupt": "cache_corrupt_rate",
}


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault model; every rate defaults to zero (disabled)."""

    seed: int = 0
    nan_rate: float = 0.0
    inf_rate: float = 0.0
    negative_rate: float = 0.0
    drop_rate: float = 0.0
    truncate_fraction: float = 0.0
    sim_fail_rate: float = 0.0
    sim_perm_fail_rate: float = 0.0
    sim_hang_rate: float = 0.0
    hang_seconds: float = 30.0
    worker_kill_rate: float = 0.0
    worker_stall_rate: float = 0.0
    worker_stall_s: float = 5.0
    cache_corrupt_rate: float = 0.0

    #: Duration fields (seconds, not probabilities) — validated as
    #: non-negative and excluded from the ``enabled`` test.
    _DURATION_FIELDS = ("hang_seconds", "worker_stall_s")

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "seed":
                continue
            if f.name in self._DURATION_FIELDS:
                if value < 0:
                    raise ValueError(f"{f.name} must be non-negative")
                continue
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{f.name} must be a probability in [0, 1]")

    @property
    def enabled(self) -> bool:
        """True when any fault class has a nonzero rate."""
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name != "seed" and f.name not in self._DURATION_FIELDS
        )

    @property
    def corrupts_profiles(self) -> bool:
        return (
            self.nan_rate > 0
            or self.inf_rate > 0
            or self.negative_rate > 0
            or self.drop_rate > 0
            or self.truncate_fraction > 0
        )

    @property
    def fails_simulations(self) -> bool:
        return (
            self.sim_fail_rate > 0
            or self.sim_perm_fail_rate > 0
            or self.sim_hang_rate > 0
        )

    @property
    def faults_workers(self) -> bool:
        """True when parallel worker processes are killed or stalled."""
        return self.worker_kill_rate > 0 or self.worker_stall_rate > 0

    @property
    def corrupts_cache(self) -> bool:
        """True when on-disk cache entries are corrupted after writes."""
        return self.cache_corrupt_rate > 0

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` CLI spec.

        Keys accept short aliases (``nan``, ``inf``, ``neg``, ``drop``,
        ``truncate``, ``sim_fail``, ``perm_fail``, ``hang``); an empty
        spec yields the disabled default plan.
        """
        plan = cls()
        spec = spec.strip()
        if not spec:
            return plan
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad fault spec item {item!r}: expected key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip().lower()
            if key not in _SPEC_ALIASES:
                raise ValueError(
                    f"unknown fault spec key {key!r}; known: "
                    f"{sorted(set(_SPEC_ALIASES))}"
                )
            field_name = _SPEC_ALIASES[key]
            value = int(raw) if field_name == "seed" else float(raw)
            plan = replace(plan, **{field_name: value})
        return plan

    def describe(self) -> str:
        """One line per active fault class, for ``repro faults``."""
        lines = [f"seed: {self.seed}"]
        active = [
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name != "seed"
            and f.name not in self._DURATION_FIELDS
            and getattr(self, f.name) > 0
        ]
        if not active:
            lines.append("all fault rates zero — injection disabled")
            return "\n".join(lines)
        for name, value in active:
            lines.append(f"{name}: {value:g}")
        if self.sim_hang_rate > 0:
            lines.append(f"hang_seconds: {self.hang_seconds:g}")
        if self.worker_stall_rate > 0:
            lines.append(f"worker_stall_s: {self.worker_stall_s:g}")
        return "\n".join(lines)


@dataclass(frozen=True)
class SimDecision:
    """The injector's verdict for one simulation attempt."""

    #: "ok", "fail", "perm_fail" or "hang".
    kind: str
    #: Virtual seconds the attempt wastes before its outcome (hangs only).
    delay: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


@dataclass(frozen=True)
class WorkerDecision:
    """The injector's verdict for one parallel task attempt."""

    #: "ok", "kill" or "stall".
    kind: str
    #: Real seconds a stalled attempt sleeps before proceeding.
    delay: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


class FaultInjector:
    """Turns a :class:`FaultPlan` into reproducible fault decisions."""

    def __init__(self, plan: FaultPlan):
        if not plan.enabled:
            raise ValueError(
                "FaultInjector requires an enabled plan; with all rates at "
                "zero the pipeline should not construct an injector at all"
            )
        self.plan = plan

    def _rng(self, salt: int, *key: int) -> np.random.Generator:
        return np.random.default_rng([self.plan.seed, salt, *key])

    # -- profile corruption --------------------------------------------------
    def corrupt_times(self, times: np.ndarray) -> np.ndarray:
        """Return a corrupted copy of a profile's execution times.

        Deterministic in ``(plan.seed, len(times))``.  Corruption classes
        are applied to independently drawn index sets (an entry hit twice
        keeps the *last* corruption, in the documented order: NaN, inf,
        negative, drop); truncation chops the tail afterwards.
        """
        plan = self.plan
        out = np.array(times, dtype=np.float64, copy=True)
        n = len(out)
        if n == 0:
            return out
        rng = self._rng(_SALT_PROFILE, n)
        injected = 0
        for rate, value in (
            (plan.nan_rate, np.nan),
            (plan.inf_rate, np.inf),
            (plan.negative_rate, None),  # negate in place
            (plan.drop_rate, 0.0),
        ):
            if rate <= 0:
                continue
            mask = rng.random(n) < rate
            hit = int(mask.sum())
            if hit == 0:
                continue
            if value is None:
                out[mask] = -np.abs(out[mask])
            else:
                out[mask] = value
            injected += hit
        if plan.truncate_fraction > 0:
            keep = max(1, int(round(n * (1.0 - plan.truncate_fraction))))
            if keep < n:
                injected += n - keep
                out = out[:keep]
        obs.inc("resilience.profile_faults_injected", injected)
        if injected:
            obs.log_event(
                "resilience.profile_corrupted",
                entries=n,
                injected=injected,
                truncated_to=len(out),
            )
        return out

    # -- simulation faults ---------------------------------------------------
    def simulation_decision(self, index: int, attempt: int = 1) -> SimDecision:
        """Verdict for simulating invocation ``index`` on ``attempt``.

        Permanent failures depend only on the invocation (every attempt
        fails); transient crashes and hangs are drawn independently per
        attempt, so retries can succeed.
        """
        plan = self.plan
        index = int(index)
        if plan.sim_perm_fail_rate > 0:
            if self._rng(_SALT_PERM, index).random() < plan.sim_perm_fail_rate:
                return SimDecision("perm_fail")
        if plan.sim_fail_rate > 0:
            if self._rng(_SALT_FAIL, index, attempt).random() < plan.sim_fail_rate:
                return SimDecision("fail")
        if plan.sim_hang_rate > 0:
            if self._rng(_SALT_HANG, index, attempt).random() < plan.sim_hang_rate:
                return SimDecision("hang", delay=plan.hang_seconds)
        return SimDecision("ok")

    def check_simulation(
        self,
        index: int,
        attempt: int = 1,
        charge: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Raise :class:`SimulationFailure` if this attempt is doomed.

        ``charge`` receives the virtual seconds a hang wastes (the
        resilient executor passes its clock's ``sleep``); the hang itself
        is reported as a plain retryable failure whose elapsed time the
        executor compares against its deadline budget.
        """
        decision = self.simulation_decision(index, attempt)
        if decision.ok:
            return
        obs.inc(f"resilience.sim_faults.{decision.kind}")
        if decision.kind == "hang" and charge is not None and decision.delay > 0:
            charge(decision.delay)
        raise SimulationFailure(
            f"injected {decision.kind} simulating invocation {index} "
            f"(attempt {attempt})",
            key=index,
            attempt=attempt,
            permanent=decision.kind == "perm_fail",
        )

    # -- process-level faults ------------------------------------------------
    def worker_decision(self, index: int, attempt: int = 1) -> WorkerDecision:
        """Verdict for running parallel task ``index`` on ``attempt``.

        Both kills and stalls are drawn independently per attempt, so
        the supervisor's deterministic re-dispatch can succeed; a kill
        verdict takes precedence over a stall.
        """
        plan = self.plan
        index = int(index)
        if plan.worker_kill_rate > 0:
            if self._rng(_SALT_KILL, index, attempt).random() < plan.worker_kill_rate:
                return WorkerDecision("kill")
        if plan.worker_stall_rate > 0:
            if self._rng(_SALT_STALL, index, attempt).random() < plan.worker_stall_rate:
                return WorkerDecision("stall", delay=plan.worker_stall_s)
        return WorkerDecision("ok")

    def apply_worker_faults(self, index: int, attempt: int = 1) -> None:
        """Enact this attempt's process fault; runs *inside* the worker.

        A kill verdict SIGKILLs the worker's own process — the real
        thing, not an exception — so the parent observes genuine pool
        breakage.  A stall verdict sleeps ``worker_stall_s`` real
        seconds (monotonic duration, not a wall-clock read), long
        enough for heartbeat supervision to declare the worker wedged.
        """
        import signal
        import time

        decision = self.worker_decision(index, attempt)
        if decision.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif decision.kind == "stall" and decision.delay > 0:
            time.sleep(decision.delay)

    # -- cache corruption ----------------------------------------------------
    @staticmethod
    def _cache_key_int(key: str) -> int:
        return int(hashlib.sha256(str(key).encode()).hexdigest()[:15], 16)

    def cache_corrupt_decision(self, key: str) -> bool:
        """Whether the entry stored under ``key`` gets its bytes flipped.

        Keyed by the entry's content-addressed key, so the same plan
        always corrupts the same entries no matter which process or run
        stored them.
        """
        if self.plan.cache_corrupt_rate <= 0:
            return False
        rng = self._rng(_SALT_CACHE, self._cache_key_int(key))
        return bool(rng.random() < self.plan.cache_corrupt_rate)

    def corrupt_cache_entry(self, path: str, key: str) -> None:
        """Deterministically flip bytes of the entry file at ``path``.

        Offsets derive from ``(plan.seed, key)``; flips land across the
        whole file, so a hit corrupts either the payload arrays (caught
        by the content checksum) or the container structure (caught as
        an unreadable entry) — both must quarantine and recompute.
        """
        size = os.path.getsize(path)
        if size == 0:
            return
        rng = self._rng(_SALT_CACHE, self._cache_key_int(key), 1)
        offsets = rng.integers(0, size, size=min(16, size))
        with open(path, "r+b") as fh:
            for offset in sorted(int(o) for o in set(offsets.tolist())):
                fh.seek(offset)
                byte = fh.read(1)
                if not byte:
                    continue
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
        obs.inc("resilience.cache_faults_injected")
        obs.log_event(
            "resilience.cache_entry_corrupted",
            level="warning",
            path=path,
            key=str(key)[:16],
        )
