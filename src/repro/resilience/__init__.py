"""repro.resilience — fault tolerance for the sampling pipeline.

The paper's promise is *trustworthy* sampled simulation; this subsystem
makes the trust survive contact with messy reality:

* :mod:`~repro.resilience.errors` — the typed exception hierarchy
  (canonically defined in :mod:`repro.errors`);
* :mod:`~repro.resilience.faults` — a deterministic, seeded
  fault-injection harness (:class:`FaultPlan` / :class:`FaultInjector`)
  for corrupting profiles and failing/hanging sample simulations;
* :mod:`~repro.resilience.validation` — strict/repair profile
  validation in front of the sampler and the profile store;
* :mod:`~repro.resilience.executor` — per-sample retries, exponential
  backoff, deadline budgets and a quarantine list;
* :mod:`~repro.resilience.degraded` — bound-preserving degraded
  estimation: replacement draws, KKT re-allocation over survivors, and
  achieved-vs-requested epsilon accounting;
* :mod:`~repro.resilience.checkpoint` — JSONL checkpoint/resume for
  experiment grids;
* :mod:`~repro.resilience.pipeline` — :func:`sample_resiliently`, the
  orchestrated fault-tolerant pipeline.

Everything is **off by default**: with no fault plan, validation finding
nothing and no checkpoint path, the pipeline's outputs are bit-identical
to the plain code path.
"""

from .checkpoint import GridCheckpoint
from .degraded import DegradedPlanResult, achieved_epsilon_of, degrade_plan
from .errors import (
    CheckpointError,
    EstimationError,
    GridExecutionError,
    InfeasibleProfilingError,
    PoisonedTaskError,
    ProfileValidationError,
    ReproError,
    SimulationFailure,
    SimulationTimeout,
    WorkerCrashError,
)
from .executor import ManualClock, ResilientExecutor, RetryPolicy, SampleOutcome
from .faults import FaultInjector, FaultPlan, SimDecision, WorkerDecision
from .pipeline import ResilientSampleResult, sample_resiliently
from .validation import ProfileHealth, validate_times

__all__ = [
    # errors
    "ReproError",
    "InfeasibleProfilingError",
    "ProfileValidationError",
    "SimulationFailure",
    "SimulationTimeout",
    "EstimationError",
    "CheckpointError",
    "WorkerCrashError",
    "PoisonedTaskError",
    "GridExecutionError",
    # faults
    "FaultPlan",
    "FaultInjector",
    "SimDecision",
    "WorkerDecision",
    # executor
    "RetryPolicy",
    "SampleOutcome",
    "ManualClock",
    "ResilientExecutor",
    # validation
    "ProfileHealth",
    "validate_times",
    # degraded estimation
    "DegradedPlanResult",
    "degrade_plan",
    "achieved_epsilon_of",
    # checkpoint
    "GridCheckpoint",
    # pipeline
    "ResilientSampleResult",
    "sample_resiliently",
]
