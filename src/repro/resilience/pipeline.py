"""The resilient sampled-simulation pipeline.

:func:`sample_resiliently` is the fault-tolerant counterpart of the
plain ``build_plan → evaluate_plan`` flow:

1. profile the workload (optionally corrupting the profile through a
   seeded :class:`~repro.resilience.faults.FaultInjector`);
2. validate/repair the profile (:mod:`repro.resilience.validation`);
3. build the sampling plan as usual;
4. run every selected sample's simulation through a
   :class:`~repro.resilience.executor.ResilientExecutor` (retries,
   deadlines, quarantine), with injected crash/hang faults if enabled;
5. repair the plan around permanently failed samples
   (:func:`~repro.resilience.degraded.degrade_plan`), simulating any
   replacement draws, and iterating until the plan is clean or
   ``max_rounds`` is hit;
6. score the final plan against the *clean* ground truth and report the
   requested vs. achieved error bound.

With ``fault_plan`` ``None`` (or all rates zero) every step reduces to
the plain pipeline: no injector is built, validation passes through
clean profiles untouched, no sample fails, and the returned plan's
cluster draws are bit-identical to ``sampler.build_plan_from_store``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from .. import obs
from ..core.estimator import SampledSimulationResult, evaluate_plan
from ..core.plan import SamplingPlan
from ..core.stem import DEFAULT_Z, ClusterStats, predicted_error_multi
from .degraded import degrade_plan
from .errors import EstimationError
from .executor import ManualClock, ResilientExecutor, RetryPolicy
from .faults import FaultInjector, FaultPlan
from .validation import ProfileHealth, validate_times

__all__ = ["ResilientSampleResult", "sample_resiliently"]


@dataclass
class ResilientSampleResult:
    """Everything the resilient pipeline learned about one run."""

    plan: SamplingPlan
    result: SampledSimulationResult
    requested_epsilon: float
    achieved_epsilon: float
    profile_health: ProfileHealth
    quarantined: int = 0
    redrawn: int = 0
    retries: int = 0
    rounds: int = 1
    reallocated: bool = False

    @property
    def degraded(self) -> bool:
        return self.quarantined > 0 or self.profile_health.repaired


def _cluster_members(sampler, workload, times, seed: int) -> Dict[str, np.ndarray]:
    """Reproduce the plan's cluster membership (labels match build_plan)."""
    rng = np.random.default_rng(seed)
    labeled = sampler.cluster(workload, times, rng=rng)
    counter: Dict[str, int] = {}
    members: Dict[str, np.ndarray] = {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    return members


def _memoized_simulate(
    sim_cache, base: Callable[[int], float], simulate_id: str, store, workload, seed: int
) -> Callable[[int], float]:
    """Wrap a per-sample simulate callable with invocation-keyed caching.

    Values are stored per (workload, GPU, profile seed, plan seed,
    simulate identity, invocation index) — one tiny entry per sampled
    invocation, so repeated rounds, pipeline calls and re-runs skip the
    simulation entirely.  Only *successful* values are ever stored (the
    injector raises before this wrapper runs), so fault semantics are
    untouched.
    """
    from ..memo.sim_cache import RawKernelSim

    context = sim_cache.context_for(
        workload,
        getattr(store, "config", None),
        int(getattr(store, "seed", 0)),
        simulator_id=f"resilience-sample\x00{int(seed)}\x00{simulate_id}",
    )
    no_events = np.zeros(0, dtype=np.int64)

    def simulate(idx: int) -> float:
        index = int(idx)
        found, missing = sim_cache.load(context, [index])
        if not missing:
            return float(found[index].wave_cycles)
        value = float(base(index))
        sim_cache.store(
            context,
            [index],
            {index: RawKernelSim(value, 0.0, 0.0, no_events)},
        )
        return value

    return simulate


def _plan_epsilon(plan: SamplingPlan, sampler, default: float = 0.05) -> float:
    meta = plan.metadata.get("epsilon")
    if isinstance(meta, (int, float)):
        return float(meta)
    return float(getattr(sampler, "epsilon", default))


def sample_resiliently(
    store,
    sampler,
    fault_plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    seed: int = 0,
    max_rounds: int = 8,
    max_loss_fraction: float = 0.25,
    simulate: Optional[Callable[[int], float]] = None,
    sim_cache=None,
) -> ResilientSampleResult:
    """Build and evaluate a sampling plan, surviving injected faults.

    ``store`` is a :class:`~repro.baselines.base.ProfileStore` (or any
    object with ``workload`` and ``execution_times()``); ``sampler`` must
    expose ``build_plan``/``cluster`` (the STEM sampler does — degraded
    estimation needs cluster membership).  ``simulate`` optionally
    overrides the per-sample simulation; by default a sample's
    "simulation" reproduces its profiled execution time, the model used
    throughout the evaluation harness.

    ``sim_cache`` (a :class:`~repro.memo.SimResultCache`) memoizes
    ``simulate`` per *invocation* across rounds, pipeline calls and runs.
    Fault decisions are checked before any cache lookup and are keyed by
    (invocation, attempt) — never by draw slot — so an injected failure
    is never masked by (or stored into) the cache, and results are
    bit-identical with and without it.  Custom ``simulate`` callables are
    keyed by their ``memo_id`` attribute when present, else by object
    ``repr`` (which degrades to per-process caching, never a stale hit).
    """
    workload = store.workload
    truth = np.asarray(store.execution_times(), dtype=np.float64)

    injector: Optional[FaultInjector] = None
    if fault_plan is not None and fault_plan.enabled:
        injector = FaultInjector(fault_plan)

    with obs.span("resilience.sample", workload=workload.name):
        # -- observe (and possibly corrupt + repair) the profile -------------
        observed = truth
        if injector is not None and fault_plan.corrupts_profiles:
            observed = injector.corrupt_times(truth)
        observed, health = validate_times(
            observed,
            expected_length=len(workload),
            mode="repair",
            name=f"{workload.name} profile",
        )

        # -- plan ------------------------------------------------------------
        plan = sampler.build_plan(workload, observed, seed=seed)
        members = _cluster_members(sampler, workload, observed, seed)
        epsilon = _plan_epsilon(plan, sampler)
        z = float(getattr(sampler, "z", DEFAULT_Z))
        replacement = bool(getattr(sampler, "replacement", True))

        # -- simulate samples under the resilient executor -------------------
        clock = ManualClock()
        executor = ResilientExecutor(
            policy=retry, clock=clock.now, sleep=clock.sleep
        )
        if simulate is None:
            simulate = lambda idx: float(truth[idx])  # noqa: E731
            simulate_id = "profile-truth"
        else:
            simulate_id = getattr(simulate, "memo_id", None) or repr(simulate)
        if sim_cache is not None:
            simulate = _memoized_simulate(
                sim_cache, simulate, simulate_id, store, workload, seed
            )

        def run_sample(key: int, attempt: int) -> float:
            # The fault check always runs first: a doomed (invocation,
            # attempt) fails identically whether or not an earlier
            # attempt's value sits in the cache.
            if injector is not None:
                injector.check_simulation(key, attempt, charge=clock.sleep)
            return simulate(key)

        executor.run_all(plan.unique_indices(), run_sample)

        # -- degrade until clean or out of rounds ----------------------------
        rounds = 1
        degraded = None
        while rounds <= max_rounds:
            quarantined = set(executor.quarantine)
            dirty = [
                int(i) for i in plan.unique_indices() if int(i) in quarantined
            ]
            if not dirty:
                break
            rounds += 1
            degraded = degrade_plan(
                plan,
                members,
                observed,
                quarantined,
                epsilon=epsilon,
                z=z,
                rng=np.random.default_rng([seed, 977, rounds]),
                replacement=replacement,
                max_loss_fraction=max_loss_fraction,
            )
            plan = degraded.plan
            executor.run_all(plan.unique_indices(), run_sample)
        else:
            raise EstimationError(
                f"degraded estimation did not converge within {max_rounds} "
                f"rounds on {workload.name!r}: every replacement draw keeps "
                "failing — raise the fault budget or inspect the workload"
            )

        # -- final bound accounting ------------------------------------------
        if degraded is not None:
            achieved = degraded.achieved_epsilon
        else:
            # No degradation: the achieved bound is the plan's own Eq. (5)
            # bound over its actual allocation.
            stats = []
            sizes = []
            for cluster in plan.clusters:
                member_times = observed[members[cluster.label]]
                stats.append(
                    ClusterStats(
                        n=cluster.member_count,
                        mu=float(max(member_times.mean(), 1e-12)),
                        sigma=float(member_times.std()),
                    )
                )
                sizes.append(cluster.sample_size)
            achieved = predicted_error_multi(stats, sizes, z=z)
        metadata = dict(plan.metadata)
        metadata.setdefault("requested_epsilon", epsilon)
        metadata["achieved_epsilon"] = achieved
        plan = SamplingPlan(
            method=plan.method,
            workload_name=plan.workload_name,
            clusters=plan.clusters,
            metadata=metadata,
        )

        result = evaluate_plan(plan, truth)

    quarantined_total = len(executor.quarantine)
    obs.log_event(
        "resilience.sample_completed",
        workload=workload.name,
        quarantined=quarantined_total,
        retries=executor.total_retries,
        rounds=rounds,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
    )
    # Exported for run ledgers: the ε contract and the fault ledger of
    # this run, in the same counters/gauges every other phase uses.
    obs.set_gauge("resilience.requested_epsilon", epsilon)
    obs.set_gauge("resilience.achieved_epsilon", achieved)
    if quarantined_total:
        obs.inc("resilience.samples_quarantined", quarantined_total)
    if executor.total_retries:
        obs.inc("resilience.retries", executor.total_retries)
    if quarantined_total > 0 or health.repaired:
        obs.inc("resilience.degraded_runs")
    return ResilientSampleResult(
        plan=plan,
        result=result,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
        profile_health=health,
        quarantined=quarantined_total,
        redrawn=degraded.redrawn if degraded is not None else 0,
        retries=executor.total_retries,
        rounds=rounds,
        reallocated=degraded.reallocated if degraded is not None else False,
    )
