"""Resilient per-sample execution: retries, deadlines, quarantine.

The sampled-simulation phase runs one small simulation per selected
kernel invocation.  Any of them can crash or hang; without protection a
single bad sample kills the whole run (and with it hours of profiling).
:class:`ResilientExecutor` wraps each per-sample call with

* **retries** — up to ``max_attempts`` tries with exponential backoff,
* **deadline budgets** — a per-attempt ``deadline`` and a per-sample
  ``total_budget``, measured on an injectable clock so tests (and the
  fault-injection harness) run in virtual time, and
* **quarantine** — samples that exhaust their budget are recorded, not
  raised, so the degraded estimator can re-draw replacements.

Failures classified as *permanent* (``SimulationFailure.permanent``)
skip the retry budget entirely: retrying a corrupt trace record cannot
succeed, so the executor quarantines it on the first attempt.

Every retry and give-up emits :mod:`repro.obs` counters and events
(``resilience.retries``, ``resilience.giveups``,
``resilience.sample_attempts``), so a run report shows exactly how much
work the fault model caused.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from .. import obs
from .errors import SimulationFailure, SimulationTimeout

__all__ = ["RetryPolicy", "SampleOutcome", "ManualClock", "ResilientExecutor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline knobs for per-sample execution."""

    #: Maximum attempts per sample (1 = no retries).
    max_attempts: int = 3
    #: Backoff before retry ``k`` is ``backoff_base * backoff_factor**(k-1)``.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: Per-attempt wall-clock budget in (virtual) seconds.
    deadline: float = float("inf")
    #: Total per-sample budget across attempts and backoffs.
    total_budget: float = float("inf")
    #: Maximum fractional jitter added to the backoff when a sample key
    #: is supplied: the wait becomes ``base * (1 + jitter * u)`` with
    #: ``u`` a deterministic function of (key, attempt).  Spreads the
    #: retry storm after a correlated failure without wall-clock
    #: randomness — the same (key, attempt) always waits the same time.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.deadline <= 0 or self.total_budget <= 0:
            raise ValueError("deadline and total_budget must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff(self, attempt: int, key: Optional[int] = None) -> float:
        """Seconds to wait before retrying after ``attempt`` failed.

        Without a ``key`` (or with ``jitter=0``) this is the exact
        exponential schedule; with one, a seeded per-(key, attempt)
        jitter fraction is mixed in so concurrent samples failing
        together don't all retry in lockstep.
        """
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if key is None or self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.sha256(
            f"retry-jitter\x00{int(key)}\x00{int(attempt)}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * u)


@dataclass
class SampleOutcome:
    """What happened to one sample across all its attempts."""

    key: int
    value: object = None
    ok: bool = False
    attempts: int = 0
    retries: int = 0
    elapsed: float = 0.0
    #: One entry per failed attempt ("fail", "timeout", "perm_fail").
    failures: List[str] = field(default_factory=list)
    #: Why the executor stopped trying ("" when it succeeded).
    gave_up: str = ""


class ManualClock:
    """A virtual clock: ``sleep`` advances time instead of blocking.

    Both the executor's backoff sleeps and injected hangs charge time
    here, so deadline semantics are exact and tests run instantly.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds


class ResilientExecutor:
    """Runs per-sample callables under a :class:`RetryPolicy`.

    ``fn`` receives ``(key, attempt)`` and returns the sample's value or
    raises :class:`SimulationFailure`.  An attempt also fails when its
    measured duration exceeds ``policy.deadline`` (a hang observed after
    the fact — cooperative timeout semantics; see docs/robustness.md).
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.policy = policy or RetryPolicy()
        if clock is None and sleep is None:
            manual = ManualClock()
            clock, sleep = manual.now, manual.sleep
        if clock is None or sleep is None:
            raise ValueError("provide both clock and sleep, or neither")
        self.clock = clock
        self.sleep = sleep
        #: Keys that permanently failed, in give-up order.
        self.quarantine: List[int] = []
        self.outcomes: Dict[int, SampleOutcome] = {}

    # -- execution -----------------------------------------------------------
    def run(self, key: int, fn: Callable[[int, int], object]) -> SampleOutcome:
        policy = self.policy
        outcome = SampleOutcome(key=int(key))
        started = self.clock()
        for attempt in range(1, policy.max_attempts + 1):
            outcome.attempts = attempt
            obs.inc("resilience.sample_attempts")
            attempt_start = self.clock()
            failure: Optional[str] = None
            permanent = False
            try:
                value = fn(key, attempt)
            except SimulationTimeout as err:
                failure = "timeout"
                permanent = err.permanent
            except SimulationFailure as err:
                failure = "perm_fail" if err.permanent else "fail"
                permanent = err.permanent
            elapsed = self.clock() - attempt_start
            if failure is None and elapsed > policy.deadline:
                # The attempt "succeeded" but only after blowing its
                # deadline — a hang; its result cannot be trusted to have
                # arrived in time, so treat it as a retryable failure.
                failure = "timeout"
            if failure is None:
                outcome.ok = True
                outcome.value = value
                break
            outcome.failures.append(failure)
            obs.log_event(
                "resilience.attempt_failed",
                level="warning",
                key=int(key),
                attempt=attempt,
                kind=failure,
            )
            if permanent:
                outcome.gave_up = "permanent failure"
                break
            total_elapsed = self.clock() - started
            if total_elapsed >= policy.total_budget:
                outcome.gave_up = "total budget exhausted"
                break
            if attempt < policy.max_attempts:
                obs.inc("resilience.retries")
                self.sleep(policy.backoff(attempt, key=int(key)))
        else:
            outcome.gave_up = "max attempts exhausted"
        outcome.retries = max(0, outcome.attempts - 1)
        outcome.elapsed = self.clock() - started
        self.outcomes[int(key)] = outcome
        if not outcome.ok:
            self.quarantine.append(int(key))
            obs.inc("resilience.giveups")
            obs.log_event(
                "resilience.sample_quarantined",
                level="warning",
                key=int(key),
                attempts=outcome.attempts,
                reason=outcome.gave_up,
            )
        return outcome

    def run_all(
        self, keys: Iterable[int], fn: Callable[[int, int], object]
    ) -> Dict[int, SampleOutcome]:
        """Run every key once (skipping keys already executed)."""
        for key in keys:
            if int(key) not in self.outcomes:
                self.run(int(key), fn)
        return self.outcomes

    # -- accounting ----------------------------------------------------------
    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes.values())

    def successful_values(self) -> Dict[int, object]:
        return {k: o.value for k, o in self.outcomes.items() if o.ok}
