"""Profile validation and repair.

Execution-time profiles are the pipeline's only input, and every
statistic downstream (cluster means, sigmas, KKT allocations, error
bounds) silently absorbs whatever garbage they contain: a single NaN
propagates into :class:`~repro.core.stem.ClusterStats` without tripping
any check, and a truncated trace shifts every index after the cut.

:func:`validate_times` is the gate in front of
:class:`~repro.baselines.base.ProfileStore` and
:meth:`~repro.core.sampler.StemRootSampler.cluster`:

* ``mode="strict"`` — raise :class:`ProfileValidationError` listing
  *every* problem found (not just the first);
* ``mode="repair"`` — replace non-finite / non-positive entries with the
  median of the healthy entries and pad truncated profiles back to the
  expected length, returning a report of what changed;
* ``mode="off"`` — trust the caller, return the input untouched.

Repair is deliberately conservative: the median keeps repaired entries
inside the observed distribution, and padding a truncated tail with the
median biases totals less than dropping the invocations would.  A
profile with no healthy entries at all cannot be repaired and raises in
every mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from .errors import ProfileValidationError

__all__ = ["ValidationMode", "ProfileHealth", "validate_times", "VALIDATION_MODES"]

VALIDATION_MODES = ("off", "strict", "repair")

# Type alias for documentation purposes.
ValidationMode = str


@dataclass
class ProfileHealth:
    """What validation found (and, in repair mode, fixed) in one profile."""

    n_entries: int
    n_nan: int = 0
    n_inf: int = 0
    n_negative: int = 0
    n_zero: int = 0
    n_padded: int = 0
    n_trimmed: int = 0
    repaired: bool = False
    issues: List[str] = field(default_factory=list)

    @property
    def n_replaced(self) -> int:
        return self.n_nan + self.n_inf + self.n_negative + self.n_zero

    @property
    def clean(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        if self.clean:
            return f"profile clean ({self.n_entries} entries)"
        verb = "repaired" if self.repaired else "found"
        return (
            f"profile {verb}: " + "; ".join(self.issues)
        )


def _inspect(times: np.ndarray, expected_length: Optional[int]) -> ProfileHealth:
    health = ProfileHealth(n_entries=len(times))
    finite = np.isfinite(times)
    health.n_nan = int(np.isnan(times).sum())
    health.n_inf = int(np.isinf(times).sum())
    health.n_negative = int((finite & (times < 0)).sum())
    health.n_zero = int((finite & (times == 0)).sum())
    if health.n_nan:
        health.issues.append(f"{health.n_nan} NaN entries")
    if health.n_inf:
        health.issues.append(f"{health.n_inf} infinite entries")
    if health.n_negative:
        health.issues.append(f"{health.n_negative} negative entries")
    if health.n_zero:
        health.issues.append(f"{health.n_zero} zero entries (dropped invocations)")
    if expected_length is not None and len(times) != expected_length:
        if len(times) < expected_length:
            health.n_padded = expected_length - len(times)
            health.issues.append(
                f"truncated: {len(times)} entries for {expected_length} "
                f"invocations"
            )
        else:
            health.n_trimmed = len(times) - expected_length
            health.issues.append(
                f"overlong: {len(times)} entries for {expected_length} "
                f"invocations"
            )
    return health


def validate_times(
    times: np.ndarray,
    expected_length: Optional[int] = None,
    mode: ValidationMode = "strict",
    name: str = "profile",
) -> Tuple[np.ndarray, ProfileHealth]:
    """Validate (and in repair mode fix) a per-invocation time profile.

    Returns ``(times, health)``; ``times`` is the input object itself in
    ``off``/``strict`` modes and a repaired copy in ``repair`` mode when
    anything needed fixing.
    """
    if mode not in VALIDATION_MODES:
        raise ValueError(f"unknown validation mode {mode!r}; use {VALIDATION_MODES}")
    times = np.asarray(times, dtype=np.float64)
    if mode == "off":
        return times, ProfileHealth(n_entries=len(times))

    health = _inspect(times, expected_length)
    if health.clean:
        return times, health

    obs.log_event(
        "resilience.profile_issues",
        level="warning",
        name=name,
        mode=mode,
        issues=list(health.issues),
    )
    if mode == "strict":
        raise ProfileValidationError(
            f"{name} failed validation: " + "; ".join(health.issues),
            issues=health.issues,
        )

    # -- repair --------------------------------------------------------------
    healthy = times[np.isfinite(times) & (times > 0)]
    if len(healthy) == 0:
        raise ProfileValidationError(
            f"{name} cannot be repaired: no healthy entries remain",
            issues=health.issues,
        )
    fill = float(np.median(healthy))
    repaired = np.array(times, copy=True)
    bad = ~(np.isfinite(repaired) & (repaired > 0))
    repaired[bad] = fill
    if expected_length is not None and len(repaired) != expected_length:
        if len(repaired) < expected_length:
            pad = np.full(expected_length - len(repaired), fill)
            repaired = np.concatenate([repaired, pad])
        else:
            repaired = repaired[:expected_length]
    health.repaired = True
    obs.inc("resilience.profiles_repaired")
    obs.inc("resilience.profile_entries_repaired",
            health.n_replaced + health.n_padded + health.n_trimmed)
    return repaired, health
