"""Bound-preserving degraded estimation.

When sample simulations fail permanently, the naive options are both
wrong: aborting the run wastes everything already simulated, and simply
skipping the failed samples biases the estimate and silently voids the
error bound the plan was sold on.  This module repairs the *plan*
instead, keeping the statistics honest:

1. **Replacement draws** — a failed sample is re-drawn uniformly from
   its cluster's surviving (non-quarantined) members.  Surviving draws
   were uniform over the cluster; conditioned on avoiding the quarantine
   they are uniform over the survivors, so mixing kept and re-drawn
   samples preserves the estimator's unbiasedness over the survivor
   population.
2. **Re-allocation** — when any cluster loses more than
   ``max_loss_fraction`` of its members (or an entire cluster dies), the
   original KKT allocation no longer reflects reality; the STEM solver
   (Eq. 6) is re-run over the surviving member statistics.
3. **Folding** — a cluster with *no* healthy members cannot be sampled
   at all; its member count is folded into the closest surviving cluster
   (same kernel name preferred, then nearest mean execution time), so
   the plan still represents every invocation rather than silently
   shrinking the workload.
4. **Achieved epsilon** — the recomputed Eq. (5) bound over the final
   allocation is reported alongside the requested bound in
   ``plan.metadata["achieved_epsilon"]`` / ``["requested_epsilon"]``.
   Degradation can only *loosen* the bound, never mask it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from .. import obs
from ..core.plan import PlanCluster, SamplingPlan
from ..core.stem import (
    DEFAULT_Z,
    ClusterStats,
    kkt_sample_sizes,
    predicted_error_multi,
)
from .errors import EstimationError

__all__ = ["DegradedPlanResult", "degrade_plan", "achieved_epsilon_of"]


@dataclass
class DegradedPlanResult:
    """A repaired plan plus the accounting of how it degraded."""

    plan: SamplingPlan
    requested_epsilon: float
    achieved_epsilon: float
    quarantined: int
    redrawn: int = 0
    reallocated: bool = False
    lost_clusters: List[str] = field(default_factory=list)
    folded_members: int = 0

    @property
    def degraded(self) -> bool:
        return self.redrawn > 0 or self.reallocated or bool(self.lost_clusters)

    @property
    def bound_loosened(self) -> bool:
        return self.achieved_epsilon > self.requested_epsilon


def _kernel_name(label: str) -> str:
    """Cluster labels are ``name#peak`` for STEM; fall back to the label."""
    return label.rsplit("#", 1)[0]


def achieved_epsilon_of(
    stats: List[ClusterStats], sizes: List[int], z: float = DEFAULT_Z
) -> float:
    """The Eq. (5) bound actually achieved by a final allocation."""
    return predicted_error_multi(stats, sizes, z=z)


def degrade_plan(
    plan: SamplingPlan,
    members: Dict[str, np.ndarray],
    times: np.ndarray,
    quarantined: Set[int],
    epsilon: float,
    z: float = DEFAULT_Z,
    rng: Optional[np.random.Generator] = None,
    replacement: bool = True,
    max_loss_fraction: float = 0.25,
) -> DegradedPlanResult:
    """Repair ``plan`` after the invocations in ``quarantined`` failed.

    ``members`` maps each plan-cluster label to the full member indices
    of that cluster (the STEM sampler's clustering provides it); ``times``
    is the profile the plan was built from (used for survivor statistics
    and re-allocation).  Returns a new plan — the input is not mutated —
    whose metadata carries requested and achieved epsilon.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    quarantined = {int(q) for q in quarantined}

    # -- survivor accounting -------------------------------------------------
    healthy: Dict[str, np.ndarray] = {}
    lost: List[str] = []
    needs_realloc = False
    for cluster in plan.clusters:
        label = cluster.label
        if label not in members:
            raise EstimationError(
                f"no membership information for cluster {label!r}; degraded "
                "estimation needs the sampler's cluster membership"
            )
        member_idx = np.asarray(members[label], dtype=np.int64)
        keep = np.array([i not in quarantined for i in member_idx], dtype=bool)
        alive = member_idx[keep]
        if len(alive) == 0:
            lost.append(label)
            continue
        healthy[label] = alive
        loss = 1.0 - len(alive) / len(member_idx)
        if loss > max_loss_fraction:
            needs_realloc = True
    if not healthy:
        raise EstimationError(
            "every cluster lost all members to the quarantine; "
            "no degraded estimate is possible"
        )
    if lost:
        needs_realloc = True

    # -- fold dead clusters into their nearest surviving neighbour -----------
    effective_counts: Dict[str, int] = {
        c.label: c.member_count for c in plan.clusters if c.label in healthy
    }
    folded_members = 0
    if lost:
        means = {
            label: float(times[idx].mean()) for label, idx in healthy.items()
        }
        by_name: Dict[str, List[str]] = {}
        for label in healthy:
            by_name.setdefault(_kernel_name(label), []).append(label)
        for cluster in plan.clusters:
            if cluster.label not in lost:
                continue
            dead_mu = float(times[np.asarray(members[cluster.label])].mean())
            if not np.isfinite(dead_mu):
                dead_mu = float(np.median(times))
            candidates = by_name.get(_kernel_name(cluster.label)) or list(healthy)
            target = min(candidates, key=lambda lb: abs(means[lb] - dead_mu))
            effective_counts[target] += cluster.member_count
            folded_members += cluster.member_count
            obs.log_event(
                "resilience.cluster_folded",
                level="warning",
                dead=cluster.label,
                into=target,
                members=cluster.member_count,
            )

    # -- survivor statistics and (re-)allocation -----------------------------
    labels = [c.label for c in plan.clusters if c.label in healthy]
    stats = [
        ClusterStats(
            n=effective_counts[label],
            mu=float(max(times[healthy[label]].mean(), 1e-12)),
            sigma=float(times[healthy[label]].std()),
        )
        for label in labels
    ]
    original_sizes = {
        c.label: c.sample_size for c in plan.clusters if c.label in healthy
    }
    if needs_realloc:
        allocated = kkt_sample_sizes(stats, epsilon=epsilon, z=z)
        # Without replacement a cluster cannot yield more distinct samples
        # than it has survivors; with replacement repeats are legitimate
        # but capping at the (effective) population keeps cost bounded,
        # matching the sampler's own cap.
        sizes = []
        for label, m in zip(labels, allocated):
            cap = effective_counts[label]
            if not replacement:
                cap = min(cap, len(healthy[label]))
            sizes.append(int(min(max(1, int(m)), max(1, cap))))
        obs.inc("resilience.reallocations")
    else:
        sizes = [original_sizes[label] for label in labels]

    # -- rebuild clusters, re-drawing replacements from survivors ------------
    redrawn = 0
    new_clusters: List[PlanCluster] = []
    for label, m in zip(labels, sizes):
        original = next(c for c in plan.clusters if c.label == label)
        kept = [
            int(i) for i in original.sampled_indices if int(i) not in quarantined
        ]
        kept = kept[:m]
        need = m - len(kept)
        if need > 0:
            pool = healthy[label]
            if replacement or need > len(pool):
                extra = rng.choice(pool, size=need, replace=True)
            else:
                # Avoid re-picking kept distinct draws where possible so
                # without-replacement semantics stay as close as the
                # survivor pool allows.
                remaining = np.setdiff1d(pool, np.asarray(kept, dtype=np.int64))
                if len(remaining) >= need:
                    extra = rng.choice(remaining, size=need, replace=False)
                else:
                    extra = rng.choice(pool, size=need, replace=True)
            kept.extend(int(i) for i in extra)
            redrawn += need
        new_clusters.append(
            PlanCluster(
                label=label,
                member_count=effective_counts[label],
                sampled_indices=np.asarray(kept, dtype=np.int64),
            )
        )

    achieved = achieved_epsilon_of(stats, sizes, z=z)
    metadata = dict(plan.metadata)
    metadata.update(
        {
            "requested_epsilon": epsilon,
            "achieved_epsilon": achieved,
            "degraded": bool(redrawn or needs_realloc or lost),
            "quarantined_samples": len(quarantined),
            "redrawn_samples": redrawn,
            "lost_clusters": list(lost),
            "reallocated": bool(needs_realloc),
        }
    )
    new_plan = SamplingPlan(
        method=plan.method,
        workload_name=plan.workload_name,
        clusters=new_clusters,
        metadata=metadata,
    )
    obs.inc("resilience.samples_redrawn", redrawn)
    obs.log_event(
        "resilience.plan_degraded",
        quarantined=len(quarantined),
        redrawn=redrawn,
        reallocated=bool(needs_realloc),
        lost_clusters=len(lost),
        achieved_epsilon=achieved,
        requested_epsilon=epsilon,
    )
    return DegradedPlanResult(
        plan=new_plan,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
        quarantined=len(quarantined),
        redrawn=redrawn,
        reallocated=bool(needs_realloc),
        lost_clusters=lost,
        folded_members=folded_members,
    )
