#!/usr/bin/env python
"""Quickstart: sample a GPU workload with STEM+ROOT in ~20 lines.

Builds a CASIO-style BERT inference workload (tens of thousands of kernel
launches), profiles it on the modeled RTX 2080 (the Nsight-Systems
equivalent), lets STEM+ROOT pick representative kernels, and compares the
sampled estimate against the full run.

Run:  python examples/quickstart.py
"""

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.workloads import load_workload


def main() -> None:
    # 1. A workload: 54,000 kernel launches of a BERT inference service.
    workload = load_workload("casio", "bert_infer", seed=0)
    print(f"workload: {workload.name} with {len(workload):,} kernel launches")

    # 2. Profile it once with the lightweight kernel-timeline profiler.
    store = ProfileStore(workload, RTX_2080, seed=0)
    times = store.execution_times()
    print(f"full execution time: {times.sum() / 1e6:.3f} s")

    # 3. Build the sampling plan: ROOT isolates each kernel's runtime
    #    contexts, STEM sizes the samples for a 5% error bound.
    sampler = StemRootSampler(epsilon=0.05)
    plan = sampler.build_plan(workload, times, seed=0)
    print(
        f"plan: {plan.num_clusters} clusters, {plan.num_samples} samples, "
        f"theoretical error bound "
        f"{plan.metadata['predicted_error'] * 100:.2f}% <= 5%"
    )

    # 4. "Simulate" only the sampled kernels and extrapolate.
    result = evaluate_plan(plan, times)
    print(f"estimated total : {result.estimated_total / 1e6:.3f} s")
    print(f"sampling error  : {result.error_percent:.3f}%")
    print(f"speedup         : {result.speedup:,.1f}x")


if __name__ == "__main__":
    main()
