#!/usr/bin/env python
"""Bring your own workload: model an application and sample it.

Shows the full data-model API: define kernel specs (static code view),
context mixtures (runtime heterogeneity), assemble a workload, inspect
per-kernel execution-time histograms, and run STEM+ROOT on it.

The example models a small physics pipeline: a compute-bound force
kernel, a neighbor-list rebuild with two runtime contexts (cached vs
rebuilt-from-scratch — same instruction count, different locality), and a
memory-bound scatter.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.analysis import classify_times, render_histogram
from repro.workloads import (
    ContextMixture,
    ContextMode,
    InstructionMix,
    KernelSpec,
    MemoryPattern,
    WorkloadBuilder,
)


def build_workload(seed: int = 0):
    rng = np.random.default_rng(seed)
    builder = WorkloadBuilder(name="nbody_pipeline", suite="synthetic")

    force = KernelSpec(
        name="compute_forces",
        grid_dim=(2048, 1, 1),
        block_dim=(256, 1, 1),
        mix=InstructionMix(fp32=180, sfu=16, load_global=12, store_global=6,
                           load_shared=30, store_shared=15, branch=6),
        memory=MemoryPattern(working_set_bytes=12 << 20),
        memory_boundedness=0.2,
    )
    neighbors = KernelSpec(
        name="build_neighbor_list",
        grid_dim=(1024, 1, 1),
        block_dim=(128, 1, 1),
        mix=InstructionMix(int_alu=60, fp32=20, load_global=24, store_global=10,
                           branch=14),
        memory=MemoryPattern(random_fraction=0.5, working_set_bytes=48 << 20),
        memory_boundedness=0.85,
    )
    scatter = KernelSpec(
        name="scatter_updates",
        grid_dim=(1024, 1, 1),
        block_dim=(256, 1, 1),
        mix=InstructionMix(int_alu=10, load_global=10, store_global=14),
        memory=MemoryPattern(random_fraction=0.8, working_set_bytes=64 << 20),
        memory_boundedness=0.95,
    )

    # Two neighbor-list contexts: mostly-cached incremental updates vs the
    # periodic full rebuild.  Identical code and instruction count.
    neighbor_contexts = ContextMixture(
        [
            ContextMode(context_id=0, weight=0.9, locality=0.8, work_jitter=0.03),
            ContextMode(context_id=1, weight=0.1, locality=0.15,
                        work_jitter=0.05, locality_jitter=0.05),
        ]
    )

    for _step in range(400):
        ctx, scales, locs, effs = neighbor_contexts.draw(1, rng)
        builder.launch_bulk(neighbors, ctx, scales, locs, effs)
        builder.launch(force, work_scale=float(rng.normal(1.0, 0.01)))
        builder.launch(
            scatter,
            work_scale=float(rng.normal(1.0, 0.05)),
            locality=float(np.clip(rng.normal(0.3, 0.1), 0, 1)),
        )
    return builder.build()


def main() -> None:
    workload = build_workload()
    store = ProfileStore(workload, RTX_2080, seed=0)
    times = store.execution_times()

    print(f"{workload.name}: {len(workload)} launches, "
          f"{len(workload.kernel_names())} kernels\n")
    for name, indices in workload.indices_by_name().items():
        shape = classify_times(times[indices])
        print(f"--- {name}: {shape.label} "
              f"(peaks={shape.num_peaks}, CoV={shape.cov:.2f})")
        print(render_histogram(times[indices], bins=16, width=40))
        print()

    plan = StemRootSampler(epsilon=0.05).build_plan(workload, times, seed=0)
    result = evaluate_plan(plan, times)
    print(f"STEM+ROOT: {plan.num_clusters} clusters, "
          f"{plan.num_samples} samples -> "
          f"error {result.error_percent:.2f}%, speedup {result.speedup:.1f}x")


if __name__ == "__main__":
    main()
