#!/usr/bin/env python
"""The trustworthiness toolkit: bounds, budgets, error bars, reports.

"Trustworthy" in the paper's title means the sampled simulation comes
with a theoretical error bound.  This example walks the full toolkit
around that bound on one workload:

1. a transparency report decomposing the bound over clusters;
2. budget planning — invert the ε↔simulated-time tradeoff;
3. a bootstrap confidence interval on the actual estimate;
4. a sampled-trace file handed to the (simulated) simulator.

Run:  python examples/trustworthy_toolkit.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.analysis import render_table
from repro.core import ClusterStats
from repro.core.bootstrap import bootstrap_estimate
from repro.core.budget import plan_for_budget
from repro.core.report import build_report
from repro.traces import read_sampled_trace, write_sampled_trace
from repro.workloads import load_workload


def main() -> None:
    workload = load_workload("casio", "resnet50_infer", scale=0.25, seed=0)
    store = ProfileStore(workload, RTX_2080, seed=0)
    times = store.execution_times()

    # -- 1. plan + transparency report --------------------------------
    sampler = StemRootSampler(epsilon=0.05)
    plan = sampler.build_plan(workload, times, seed=0)
    rng = np.random.default_rng(0)
    labeled = sampler.cluster(workload, times, rng=rng)
    counter, members = {}, {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    report = build_report(plan, times, cluster_members=members)
    print(report.to_text(top=8))

    # -- 2. budget planning ----------------------------------------------
    stats = [lc.stats for lc in labeled]
    total_time = float(times.sum())
    print("\nBudget planning (invert the error/time tradeoff):")
    rows = []
    for fraction in (0.002, 0.01, 0.05):
        budget = total_time * fraction
        budget_plan = plan_for_budget(stats, budget)
        rows.append(
            [
                f"{fraction:.1%} of full time",
                budget_plan.achievable_epsilon * 100,
                int(budget_plan.sample_sizes.sum()),
                budget_plan.within_budget,
            ]
        )
    print(render_table(["budget", "achievable eps %", "samples", "fits"], rows))

    # -- 3. bootstrap error bars -----------------------------------------------
    # Resampling needs several samples per cluster to see variance, so
    # use per-name clusters (many samples each).  Fine-grained ROOT plans
    # pin most clusters at one sample — the bootstrap is then blind to
    # their residual error, the overconfidence one-sample-per-cluster
    # baselines exhibit (see docs/methodology.md §6).
    coarse = StemRootSampler(epsilon=0.01, use_root=False).build_plan(
        workload, times, seed=0
    )
    ci = bootstrap_estimate(coarse, times, seed=1)
    result = evaluate_plan(coarse, times)
    print(
        f"\nBootstrap 95% CI (eps=1%, per-name clusters, "
        f"{coarse.num_samples} samples): "
        f"[{ci.lower / 1e6:.4f}, {ci.upper / 1e6:.4f}] s around "
        f"{ci.estimate / 1e6:.4f} s"
        f"\n  half-width {ci.half_width_percent:.3f}%, "
        f"truth {result.true_total / 1e6:.4f} s, "
        f"covered={ci.contains(result.true_total)}"
    )

    # -- 4. the trace hand-off ---------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "resnet50_sampled.jsonl"
        written = write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)
        print(
            f"\nTrace hand-off: {written} sampled-kernel records, "
            f"weights sum to {trace.weights.sum():,.0f} "
            f"(workload size {len(workload):,})"
        )


if __name__ == "__main__":
    main()
