#!/usr/bin/env python
"""Design-space exploration with sampled cycle-level simulation.

The workflow architects actually use sampling for (paper Sec. 5.4): pick
representative kernels ONCE from a cheap execution-time profile on the
baseline machine, then evaluate candidate hardware designs by simulating
only those kernels on the cycle-level simulator — here, cache-capacity
and SM-count variants of the RTX 2080.

Run:  python examples/design_space_exploration.py
"""

import time

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.analysis import render_table
from repro.hardware import dse_variants
from repro.sim import GpuSimulator
from repro.workloads import load_workload


def main() -> None:
    # A reduced workload, small enough to also run the FULL simulation
    # for ground truth (as the paper does for Table 4).
    workload = load_workload("rodinia", "hotspot", scale=0.1, seed=0).head(120)
    print(f"workload: hotspot (reduced) — {len(workload)} kernel launches")

    # Sampling information from the baseline machine's time profile.
    store = ProfileStore(workload, RTX_2080, seed=0)
    plan = StemRootSampler(epsilon=0.05).build_plan_from_store(store, seed=0)
    unique = plan.unique_indices()
    print(
        f"STEM plan: {plan.num_clusters} clusters, "
        f"{len(unique)} unique kernels to simulate "
        f"({len(unique) / len(workload):.1%} of the workload)\n"
    )

    rows = []
    for gpu in dse_variants(RTX_2080):
        simulator = GpuSimulator(gpu)
        # Sampled simulation: only the plan's kernels...
        t0 = time.perf_counter()
        sampled = simulator.simulate_workload(workload, indices=unique, seed=0)
        sampled_wall = time.perf_counter() - t0
        cycles_by_index = sampled.cycles_by_index()
        import numpy as np

        estimate = sum(
            cluster.member_count
            * np.mean([cycles_by_index[int(i)] for i in cluster.sampled_indices])
            for cluster in plan.clusters
        )
        # ...vs the full simulation for ground truth.
        t0 = time.perf_counter()
        full = simulator.simulate_workload(workload, seed=0)
        full_wall = time.perf_counter() - t0
        error = abs(estimate - full.total_cycles) / full.total_cycles * 100
        rows.append(
            [
                gpu.name,
                full.total_cycles / 1e6,
                estimate / 1e6,
                error,
                full_wall / max(sampled_wall, 1e-9),
            ]
        )

    print(
        render_table(
            ["design point", "full Mcycles", "sampled Mcycles", "error %", "sim speedup x"],
            rows,
            title="Sampled vs full cycle-level simulation across design points",
        )
    )
    print(
        "\nThe same sampling information (from the baseline profile) stays"
        "\naccurate on every hardware variant — Table 4's conclusion."
    )


if __name__ == "__main__":
    main()
