#!/usr/bin/env python
"""Large-scale LLM serving: sampling two million kernel launches.

The motivating scenario of the paper: a GPT-2 text-generation workload
whose full cycle-level simulation would take days.  Only two methods are
even feasible at this scale — uniform random sampling and STEM (the
instruction-level profilers would need weeks of profiling; see Table 5).

The decode loop makes attention kernels' work grow with the KV cache at
every step, so uniform sampling must get lucky to cover all phases, while
STEM's clusters capture the drift explicitly.

Run:  python examples/llm_inference_sampling.py
"""

import time

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.baselines import RandomSampler
from repro.profiling import OverheadModel
from repro.workloads import load_workload


def main() -> None:
    t0 = time.perf_counter()
    workload = load_workload("huggingface", "gpt2", seed=0)
    print(
        f"gpt2 serving workload: {len(workload):,} kernel launches "
        f"(built in {time.perf_counter() - t0:.1f}s)"
    )

    store = ProfileStore(workload, RTX_2080, seed=0)
    t0 = time.perf_counter()
    times = store.execution_times()
    print(
        f"profiled {len(times):,} kernels in {time.perf_counter() - t0:.1f}s "
        f"(modeled wall time {times.sum() / 1e6:.0f}s)"
    )

    # Profiling feasibility (Table 5's point): STEM's timeline profile is
    # cheap; per-warp instrumentation would take weeks at this scale.
    overhead = OverheadModel(RTX_2080)
    for method in ("stem", "pka"):
        estimate = overhead.estimate(method, workload)
        status = "ok" if estimate.feasible else "INFEASIBLE"
        print(
            f"  {method:5s} profiling: {estimate.overhead_factor:10.1f}x "
            f"overhead, {estimate.profiling_days:8.2f} days  [{status}]"
        )

    for sampler in (RandomSampler(0.001), StemRootSampler(epsilon=0.05)):
        t0 = time.perf_counter()
        if hasattr(sampler, "build_plan_from_store"):
            plan = sampler.build_plan_from_store(store, seed=1)
        else:
            plan = sampler.build_plan(store, seed=1)
        result = evaluate_plan(plan, times)
        print(
            f"{plan.method:7s} error={result.error_percent:6.3f}%  "
            f"speedup={result.speedup:12,.1f}x  "
            f"samples={result.num_samples:6d}  "
            f"(planned in {time.perf_counter() - t0:.1f}s)"
        )


if __name__ == "__main__":
    main()
