#!/usr/bin/env python
"""Cross-GPU portability of sampling information (Figure 13 workflow).

Profiles CASIO-style ML workloads on the modeled H100, builds STEM
sampling plans from those profiles, and evaluates the plans against
execution times on the H200 — whose upgrades are concentrated in the
memory subsystem.  The memory-intensive DLRM workload moves the most,
exactly the paper's observation.

Run:  python examples/cross_gpu_portability.py
"""

from repro.analysis import render_table
from repro.experiments.cross_gpu import PAPER_FIGURE13_MEAN_ERROR, run_cross_gpu


def main() -> None:
    results = run_cross_gpu(suite="casio", repetitions=3, workload_scale=0.25)
    rows = [
        [r.workload, r.same_gpu_error_percent, r.error_percent, r.speedup]
        for r in sorted(results, key=lambda r: r.error_percent, reverse=True)
    ]
    print(
        render_table(
            ["workload", "H100 err %", "H100->H200 err %", "speedup x"],
            rows,
            title=(
                "Sampling decisions from H100 profiles, scored on the H200 "
                f"(paper mean: {PAPER_FIGURE13_MEAN_ERROR}%)"
            ),
        )
    )
    mean_err = sum(r.error_percent for r in results) / len(results)
    print(f"\nmean cross-GPU error: {mean_err:.2f}%")
    print(
        "STEM's adaptive oversampling of memory-sensitive kernels is what"
        "\nkeeps hardware-induced drift bounded (paper Sec. 6.1)."
    )


if __name__ == "__main__":
    main()
