#!/usr/bin/env python
"""Compare all five sampling methods on an ML workload (a Table 3 slice).

Runs Random / PKA / Sieve / Photon / STEM on the CASIO-style DLRM
recommendation-model workload — the paper's Figure 10 case study, whose
random-access embedding lookups give kernels wide execution-time spreads
that static signatures cannot see.

Run:  python examples/method_comparison.py [workload]
"""

import sys

from repro import ProfileStore, RTX_2080, StemRootSampler, evaluate_plan
from repro.analysis import render_table
from repro.baselines import PhotonSampler, PkaSampler, RandomSampler, SieveSampler
from repro.workloads import load_workload


def main(workload_name: str = "dlrm") -> None:
    workload = load_workload("casio", workload_name, seed=0)
    store = ProfileStore(workload, RTX_2080, seed=0)
    times = store.execution_times()
    print(f"{workload_name}: {len(workload):,} launches, "
          f"{len(workload.kernel_names())} kernel types\n")

    samplers = [
        RandomSampler(0.001),
        PkaSampler(),
        SieveSampler(),
        PhotonSampler(),
        StemRootSampler(epsilon=0.05),
    ]
    rows = []
    for sampler in samplers:
        if hasattr(sampler, "build_plan_from_store"):
            plan = sampler.build_plan_from_store(store, seed=1)
        else:
            plan = sampler.build_plan(store, seed=1)
        result = evaluate_plan(plan, times)
        rows.append(
            [
                plan.method,
                result.error_percent,
                result.speedup,
                plan.num_clusters,
                plan.num_samples,
            ]
        )
    print(
        render_table(
            ["method", "error %", "speedup x", "clusters", "samples"],
            rows,
            title=f"Sampling methods on {workload_name} (one run, seed 1)",
        )
    )
    print(
        "\nSTEM allocates many samples to the wide embedding-gather"
        "\nclusters and one each to the stable GEMM peaks — the adaptive"
        "\nsampling of Sec. 3.2."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dlrm")
