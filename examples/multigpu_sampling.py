#!/usr/bin/env python
"""Multi-GPU execution-trace sampling (the paper's Sec. 6.2 extension).

Builds Chakra-style execution traces for two parallel-training shapes —
data-parallel training with per-layer allreduce, and pipeline-parallel
inference with P2P transfers — then applies STEM+ROOT *node sampling*:
only a small fraction of operators is simulated in detail, the rest
receive their cluster's representative duration, and the full multi-GPU
timeline (with computation-communication overlap and interconnect
contention) is reconstructed by the list scheduler.

Run:  python examples/multigpu_sampling.py
"""

from repro.analysis import render_table
from repro.multigpu import (
    EtStemSampler,
    TimelineSimulator,
    data_parallel_training,
    pipeline_parallel_inference,
)


def main() -> None:
    simulator = TimelineSimulator()
    sampler = EtStemSampler(epsilon=0.05)

    traces = [
        data_parallel_training(num_gpus=8, layers=12, steps=50, seed=0),
        pipeline_parallel_inference(num_stages=6, requests=200, seed=1),
    ]
    rows = []
    for trace in traces:
        summary = trace.describe()
        result = sampler.evaluate(trace, simulator, seed=7)
        rows.append(
            [
                trace.name,
                int(summary["num_nodes"]),
                result.num_sampled,
                result.detail_fraction * 100,
                result.makespan_error_percent,
                result.total_time_error_percent,
            ]
        )
    print(
        render_table(
            [
                "trace", "operators", "simulated", "detail %",
                "makespan err %", "device-time err %",
            ],
            rows,
            title="STEM node sampling on multi-GPU execution traces",
        )
    )

    full = simulator.simulate(traces[0], seed=7)
    print(
        f"\n{traces[0].name}: makespan {full.makespan:,.0f} us, "
        f"network utilization {full.utilization('net'):.1%}, "
        f"gpu0 utilization {full.utilization('gpu0'):.1%}\n"
    )

    # Visualize the first slice of the reconstructed timeline.
    from repro.analysis import render_gantt

    horizon = full.makespan * 0.06
    intervals = {}
    for node in traces[0].nodes():
        start = full.start_times[node.node_id]
        if start > horizon:
            continue
        finish = min(start + full.durations[node.node_id], horizon)
        intervals.setdefault(node.resource, []).append((start, finish))
    print(
        render_gantt(
            intervals,
            title="First ~6% of the data-parallel timeline (# = busy):",
            end_time=horizon,
        )
    )
    print(
        "Dependencies and contention are preserved exactly; only operator"
        "\ndurations are sampled — the starting point the paper sketches"
        "\nfor extending kernel-level sampling to multi-GPU simulators."
    )


if __name__ == "__main__":
    main()
