"""Figure 8: per-workload sampling error of the four methods."""

import numpy as np

from _shared import show, suite_rows
from repro.analysis import render_table
from repro.experiments.speedup_error import per_workload_summary


def run():
    rows = list(suite_rows("rodinia")) + list(suite_rows("casio"))
    return per_workload_summary(rows)


def test_figure8(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ["random", "pka", "sieve", "photon", "stem"]
    rendered = [
        [w] + [table[w][m]["error_percent"] for m in methods] for w in sorted(table)
    ]
    show(
        render_table(
            ["workload"] + methods,
            rendered,
            title="Figure 8: per-workload sampling error (%)",
        )
    )
    # STEM's mean error across workloads is the lowest of all methods,
    # and near-zero on the CASIO-side workloads (paper: 0.36%).
    means = {
        m: float(np.mean([table[w][m]["error_percent"] for w in table]))
        for m in methods
    }
    assert means["stem"] == min(means.values()), means
    assert means["stem"] < 3.0
