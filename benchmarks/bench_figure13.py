"""Figure 13: H100-derived sampling information evaluated on the H200."""

import numpy as np

from _shared import FULL, show
from repro.analysis import render_table
from repro.experiments.cross_gpu import PAPER_FIGURE13_MEAN_ERROR, run_cross_gpu


def run():
    return run_cross_gpu(
        suite="casio",
        repetitions=5 if FULL else 3,
        workload_scale=1.0 if FULL else 0.25,
    )


def test_figure13(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r.workload, r.error_percent, r.same_gpu_error_percent, r.speedup]
        for r in results
    ]
    mean_cross = float(np.mean([r.error_percent for r in results]))
    rows.append(["MEAN", mean_cross, float(np.mean([r.same_gpu_error_percent for r in results])), float("nan")])
    show(
        render_table(
            ["workload", "H100->H200 err %", "same-GPU err %", "speedup x"],
            rows,
            title=(
                "Figure 13: cross-GPU portability "
                f"(paper mean error {PAPER_FIGURE13_MEAN_ERROR}%)"
            ),
        )
    )

    # Shape: cross-GPU error stays moderate (paper: 5.46% mean), and the
    # memory-intensive dlrm workload is the hardest case.
    assert mean_cross < 15.0
    by_workload = {r.workload: r.error_percent for r in results}
    worst = max(by_workload, key=by_workload.get)
    assert by_workload["dlrm"] >= np.median(list(by_workload.values())), (
        worst,
        by_workload,
    )
