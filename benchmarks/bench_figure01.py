"""Figure 1: execution-time histograms of repeated GPU kernels."""

from _shared import show
from repro.analysis import render_histogram, render_table
from repro.experiments.figure1 import run_figure1, shape_census


def test_figure1(benchmark):
    histograms = benchmark.pedantic(
        run_figure1,
        kwargs={"workload_names": ["resnet50_infer", "bert_infer"]},
        rounds=1,
        iterations=1,
    )

    rows = [
        [h.workload, h.kernel, len(h.times), h.shape.num_peaks, h.shape.cov, h.shape.label]
        for h in histograms
    ]
    show(
        render_table(
            ["workload", "kernel", "calls", "peaks", "CoV", "shape"],
            rows,
            title="Figure 1: runtime heterogeneity of repeated kernels",
        )
    )
    # Show the three signature shapes the paper highlights by name.
    for needle in ("bn_fw_inf", "max_pool", "sgemm_128x64"):
        match = next((h for h in histograms if needle in h.kernel), None)
        if match is not None:
            show(render_histogram(match.times, bins=32, title=f"{match.kernel} ({match.shape.label})"))

    census = shape_census(histograms)
    # The heterogeneity menagerie: multi-peak, wide AND narrow kernels
    # coexist, which is the paper's motivating observation.
    assert any(label.startswith("multi-peak") for label in census)
    assert any(h.shape.cov > 0.25 for h in histograms)
    assert any(h.shape.label == "narrow" for h in histograms)
    bn = next(h for h in histograms if "bn_fw_inf" in h.kernel)
    assert bn.shape.num_peaks >= 2  # paper: three clearly separated peaks
    pool = next(h for h in histograms if "max_pool" in h.kernel)
    assert pool.shape.cov > 0.2  # paper: wide memory-bound spread
