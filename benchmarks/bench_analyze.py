"""Analyzer runtime: whole-program ``repro analyze`` must stay cheap.

The analysis tier loads every module under the configured paths, builds
the project call graph, and runs three interprocedural passes
(seed-flow, pool purity, cache-key soundness).  It is meant to run on
every PR, so its wall-clock is an SLO: ``analyze_runtime_s`` in
``[tool.repro.slo.metric_max]`` (enforced by ``repro obs check`` over
the ledger record this bench appends).

Also measured, for context: graph construction alone (the fixpoint
passes are the rest), and the cost of one *disabled* DetSan hook — the
runtime sanitizer's hooks sit on hot simulation paths and must be an
early-returning no-op when ``REPRO_DETSAN`` is unset.

Run standalone (``PYTHONPATH=src python benchmarks/bench_analyze.py``,
which writes BENCH_analyze.json and ledger-records the runtime) or via
pytest (``pytest benchmarks/bench_analyze.py``).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.analysis import detsan
from repro.analysis.engine import build_graph, run_analysis
from repro.lint import load_config

REPO_CONFIG = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "pyproject.toml",
)
REPEATS = 3
MAX_ANALYZE_SECONDS = 60.0  # [tool.repro.slo.metric_max] analyze_runtime_s


def _disabled_hook_seconds(calls: int = 200_000) -> float:
    """Average cost of one DetSan record() with the sanitizer off."""
    assert not detsan.is_enabled()
    start = time.perf_counter()
    for _ in range(calls):
        detsan.record("bench.noop", None)
    return (time.perf_counter() - start) / calls


def measure() -> dict:
    config = load_config(REPO_CONFIG)

    best_graph = float("inf")
    best_total = float("inf")
    files = functions = 0
    findings = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        graph = build_graph(config)
        best_graph = min(best_graph, time.perf_counter() - start)
        functions = len(graph.functions)

        start = time.perf_counter()
        result = run_analysis(config)
        best_total = min(best_total, time.perf_counter() - start)
        files = result.files_checked
        findings = len(result.findings)

    hook = _disabled_hook_seconds()

    print()
    print(f"files analyzed           : {files:8d}")
    print(f"functions in call graph  : {functions:8d}")
    print(f"graph construction       : {best_graph * 1e3:8.1f} ms")
    print(f"full analyze (3 passes)  : {best_total * 1e3:8.1f} ms "
          f"(bound {MAX_ANALYZE_SECONDS:.0f}s)")
    print(f"disabled detsan hook     : {hook * 1e9:8.1f} ns/call")
    print(f"findings                 : {findings:8d}")

    return {
        "repeats": REPEATS,
        "files_checked": files,
        "graph_functions": functions,
        "graph_seconds": best_graph,
        "analyze_seconds": best_total,
        "detsan_disabled_hook_seconds": hook,
        "findings": findings,
        "bound_seconds": MAX_ANALYZE_SECONDS,
    }


def test_analyze_runtime_under_bound():
    report = measure()
    assert report["analyze_seconds"] < MAX_ANALYZE_SECONDS, (
        f"repro analyze took {report['analyze_seconds']:.1f}s, "
        f"over the {MAX_ANALYZE_SECONDS:.0f}s SLO"
    )


if __name__ == "__main__":
    from _shared import write_bench_report

    report = measure()
    write_bench_report(
        "BENCH_analyze.json",
        report,
        command="bench_analyze",
        label="default",
        config={"repeats": REPEATS},
        metrics={"analyze_runtime_s": report["analyze_seconds"]},
    )
    print("report written to BENCH_analyze.json")
    if report["analyze_seconds"] >= MAX_ANALYZE_SECONDS:
        print(
            f"FAIL: analyze took {report['analyze_seconds']:.1f}s, "
            f"over the {MAX_ANALYZE_SECONDS:.0f}s SLO",
            file=sys.stderr,
        )
        raise SystemExit(1)
