"""Sec. 5.6 scalability: STEM's pipeline is near-linear in kernel count."""

from _shared import FULL, show
from repro.analysis import render_table
from repro.experiments.scalability import fit_exponent, run_scalability


def test_scalability(benchmark):
    scales = (0.02, 0.05, 0.1, 0.2, 0.4) if FULL else (0.02, 0.05, 0.1, 0.2)
    points = benchmark.pedantic(
        run_scalability, kwargs={"scales": scales}, rounds=1, iterations=1
    )
    exponent, r_squared = fit_exponent(points)
    rows = [
        [p.num_invocations, p.profile_seconds, p.plan_seconds, p.total_seconds]
        for p in points
    ]
    rows.append(["power-law exponent", exponent, "r^2", r_squared])
    show(
        render_table(
            ["kernel launches", "profile s", "cluster+allocate s", "total s"],
            rows,
            title="STEM pipeline wall time vs workload size (paper: O(N log N))",
            precision=3,
        )
    )
    # Near-linear: far from Photon's quadratic growth.
    assert exponent < 1.5, exponent
    # And absolute cost stays tiny even at hundreds of thousands of kernels.
    assert points[-1].total_seconds < 60.0
