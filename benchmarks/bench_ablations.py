"""Ablations of STEM+ROOT's design choices (DESIGN.md Sec. 5).

1. Joint KKT allocation (Eq. 6) vs independent per-cluster Eq. (3) —
   the paper claims 2-3x fewer samples at the same bound.
2. ROOT's recursive clustering vs one-cluster-per-kernel-name.
3. The split arity k (paper: "any number above 2 works well").
4. Sampling with vs without replacement.
"""

import numpy as np

from _shared import FULL, show
from repro.analysis import render_table
from repro.baselines import ProfileStore
from repro.core import StemRootSampler, evaluate_plan
from repro.hardware import RTX_2080
from repro.workloads import load_workload

SCALE = 1.0 if FULL else 0.25
REPS = 5 if FULL else 3
WORKLOADS = ["bert_infer", "dlrm", "resnet50_infer", "unet_train"]


def _evaluate(sampler_factory):
    """Mean (error%, speedup, samples) of a sampler over the workload set."""
    errors, speedups, samples = [], [], []
    for name in WORKLOADS:
        workload = load_workload("casio", name, scale=SCALE, seed=0)
        for rep in range(REPS):
            store = ProfileStore(workload, RTX_2080, seed=rep * 977 + 1)
            plan = sampler_factory().build_plan_from_store(store, seed=rep)
            result = evaluate_plan(plan, store.execution_times())
            errors.append(result.error_percent)
            speedups.append(result.speedup)
            samples.append(plan.num_samples)
    return float(np.mean(errors)), float(np.mean(speedups)), float(np.mean(samples))


def test_ablation_kkt(benchmark):
    def run():
        joint = _evaluate(lambda: StemRootSampler(use_kkt=True))
        independent = _evaluate(lambda: StemRootSampler(use_kkt=False))
        return joint, independent

    (joint, independent) = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            ["allocation", "error %", "speedup x", "avg samples"],
            [["joint KKT (Eq. 6)", *joint], ["per-cluster Eq. (3)", *independent]],
            title="Ablation: joint vs per-cluster sample-size allocation",
        )
    )
    # Joint allocation needs fewer samples; both respect the bound.
    assert joint[2] < independent[2]
    assert joint[0] < 5.0 and independent[0] < 5.0
    # Paper: 2-3x fewer samples; after ROOT's fine-grained splits most
    # clusters sit at the one-sample floor, so the measured savings here
    # are smaller but still material.
    assert independent[2] / joint[2] > 1.15


def test_ablation_root(benchmark):
    def run():
        with_root = _evaluate(lambda: StemRootSampler(use_root=True))
        without = _evaluate(lambda: StemRootSampler(use_root=False))
        return with_root, without

    (with_root, without) = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            ["clustering", "error %", "speedup x", "avg samples"],
            [["ROOT (hierarchical)", *with_root], ["per-name only", *without]],
            title="Ablation: ROOT's fine-grained clustering",
        )
    )
    # Without ROOT, multi-peak kernels inflate sigma and hence samples:
    # ROOT reaches the same bound with less simulated work.
    assert with_root[0] < 5.0 and without[0] < 5.0
    assert with_root[2] < without[2]


def test_ablation_split_arity(benchmark):
    def run():
        return {k: _evaluate(lambda k=k: StemRootSampler(k=k)) for k in (2, 3, 4)}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            ["k", "error %", "speedup x", "avg samples"],
            [[k, *vals] for k, vals in outcomes.items()],
            title="Ablation: ROOT split arity k (paper: any k >= 2 works)",
        )
    )
    for k, (error, _speedup, _samples) in outcomes.items():
        assert error < 5.0, k
    errors = [vals[0] for vals in outcomes.values()]
    assert max(errors) - min(errors) < 3.0


def test_ablation_replacement(benchmark):
    def run():
        with_repl = _evaluate(lambda: StemRootSampler(replacement=True))
        without = _evaluate(lambda: StemRootSampler(replacement=False))
        return with_repl, without

    (with_repl, without) = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            ["sampling", "error %", "speedup x", "avg samples"],
            [["with replacement (i.i.d.)", *with_repl], ["without replacement", *without]],
            title="Ablation: random sampling with vs without replacement",
        )
    )
    # Both are accurate; replacement is what the CLT analysis assumes.
    assert with_repl[0] < 5.0
    assert without[0] < 5.0


def test_signature_comparison_with_tbpoint(benchmark):
    """Extra baseline: TBPoint (Sec. 7.2) vs its successor PKA vs STEM.

    Both code-signature methods share the one-sample-per-cluster blind
    spot; TBPoint's centroid-nearest pick removes the first-chronological
    bias but not the runtime-diversity problem.
    """
    from repro.baselines import PkaSampler, TbpointSampler

    def run():
        stem = _evaluate(lambda: StemRootSampler())
        results = {"stem": stem}
        for name, factory in (
            ("pka", PkaSampler),
            ("tbpoint", TbpointSampler),
        ):
            errors, speedups, samples = [], [], []
            for workload_name in WORKLOADS[:2]:
                workload = load_workload("casio", workload_name, scale=SCALE, seed=0)
                for rep in range(REPS):
                    store = ProfileStore(workload, RTX_2080, seed=rep * 977 + 1)
                    plan = factory().build_plan(store, seed=rep)
                    outcome = evaluate_plan(plan, store.execution_times())
                    errors.append(outcome.error_percent)
                    speedups.append(outcome.speedup)
                    samples.append(plan.num_samples)
            results[name] = (
                float(np.mean(errors)),
                float(np.mean(speedups)),
                float(np.mean(samples)),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            ["method", "error %", "speedup x", "avg samples"],
            [[name, *vals] for name, vals in results.items()],
            title="Signature comparison incl. TBPoint (centroid-nearest)",
        )
    )
    assert results["stem"][0] == min(vals[0] for vals in results.values())
