"""Table 5: profiling overheads of each method per suite."""

from _shared import show
from repro.analysis import render_table
from repro.experiments.profiling_overhead import PAPER_TABLE5, run_profiling_overhead


def run():
    # Overhead estimation is vectorized and cheap, so always use full
    # workload scales — feasibility depends on true kernel counts.
    return run_profiling_overhead(workload_scale=1.0)


def test_table5(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(r.method, r.suite): r for r in rows}

    methods = ["pka", "sieve", "photon", "stem"]
    suites = ["rodinia", "casio", "huggingface"]
    rendered = []
    for method in methods:
        row = [method]
        for suite in suites:
            r = by_key[(method, suite)]
            row.append(r.overhead_factor if r.feasible else float("nan"))
        for suite in suites:
            paper = PAPER_TABLE5[method][suite]
            row.append(paper if paper is not None else float("nan"))
        rendered.append(row)
    show(
        render_table(
            ["method"]
            + [f"{s} x" for s in suites]
            + [f"paper {s} x" for s in suites],
            rendered,
            title="Table 5: profiling overhead relative to uninstrumented wall time",
        )
    )

    # Shape assertions, matching the paper's ordering per suite.
    for suite in suites:
        stem = by_key[("stem", suite)]
        assert stem.feasible
        assert stem.overhead_factor < 10.0
        for method in ("pka", "sieve", "photon"):
            other = by_key[(method, suite)]
            if other.feasible:
                assert other.overhead_factor > stem.overhead_factor
    # Instruction-level profiling is projected infeasible on HuggingFace.
    assert not by_key[("pka", "huggingface")].feasible
    # STEM's reduction factor on CASIO is large (paper: 53-670x cheaper).
    casio_reduction = (
        by_key[("sieve", "casio")].overhead_factor
        / by_key[("stem", "casio")].overhead_factor
    )
    assert casio_reduction > 10.0
