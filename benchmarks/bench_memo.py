"""Benchmark the memoization stack: dedup, sim-result cache, tree reuse.

Standalone script (not pytest-driven like the table/figure benches):
it times three workloads cold vs warm, verifies every memoized run is
*bit-identical* to the unoptimized path, and writes a machine-readable
report with per-stage hit rates:

1. **sweep** — a 4-epsilon error-bound sweep scored against the cycle
   simulator.  Cold = no caches at all; warm = same sweep against a
   populated sim-result cache plus a shared ROOT split-tree cache.  The
   acceptance target is a >=2x wall-clock reduction on the warm run.
2. **dse** — a reduced DSE grid, cold vs warm against the same
   sim-result cache (the per-variant full simulations dominate).
3. **dedup** — ``simulate_workload`` on a heavy-repeat draw list with
   dedup on vs off (no cache involved; measures collapse alone).

Usage::

    python benchmarks/bench_memo.py --quick
    python benchmarks/bench_memo.py --out BENCH_memo.json

``--quick`` shrinks every stage so the script finishes in well under a
minute — CI runs it as a smoke test.  Equality failures exit non-zero;
they are the real acceptance criterion at any scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _shared import write_bench_report

import numpy as np

from repro.experiments.dse import DseWorkloadSpec, run_dse
from repro.experiments.error_bound_sweep import run_error_bound_sweep
from repro.experiments.runner import ExperimentConfig
from repro.hardware import RTX_2080
from repro.memo import SimResultCache, SplitTreeCache
from repro.sim import GpuSimulator
from repro.workloads import load_workload

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def cache_stats(cache) -> Dict[str, float]:
    stats = dict(cache.stats())
    seen = stats.get("hits", 0) + stats.get("misses", 0)
    stats["hit_rate"] = (stats.get("hits", 0) / seen) if seen else 0.0
    return stats


def bench_sweep(quick: bool, sim_root: str) -> Dict[str, object]:
    epsilons = (0.03, 0.05, 0.10, 0.25)
    scale = 0.05 if FULL else (0.01 if quick else 0.02)
    reps = 2 if FULL else 1
    config = ExperimentConfig(repetitions=reps, workload_scale=scale)

    # Cold baseline: no dedup help beyond what plans always had, no
    # sim cache, tree cache explicitly disabled.
    cold_points, cold_s = timed(
        lambda: run_error_bound_sweep(
            epsilons, config=config, suite="rodinia",
            ground_truth="sim", tree_cache=False,
        )
    )

    # Populate the caches (not timed as "warm": it pays the misses).
    sim_cache = SimResultCache(sim_root)
    tree_cache = SplitTreeCache()
    seed_points, seed_s = timed(
        lambda: run_error_bound_sweep(
            epsilons, config=config, suite="rodinia",
            ground_truth="sim", sim_cache=sim_cache, tree_cache=tree_cache,
        )
    )

    warm_points, warm_s = timed(
        lambda: run_error_bound_sweep(
            epsilons, config=config, suite="rodinia",
            ground_truth="sim", sim_cache=sim_cache, tree_cache=tree_cache,
        )
    )

    identical = cold_points == seed_points == warm_points
    return {
        "epsilons": list(epsilons),
        "workload_scale": scale,
        "repetitions": reps,
        "cold_seconds": cold_s,
        "first_cached_seconds": seed_s,
        "warm_seconds": warm_s,
        "warm_speedup": (cold_s / warm_s) if warm_s > 0 else None,
        "points_identical": identical,
        "sim_cache": cache_stats(sim_cache),
        "tree_cache": cache_stats(tree_cache),
    }


def bench_dse(quick: bool, sim_root: str) -> Dict[str, object]:
    if FULL:
        specs = [
            DseWorkloadSpec("rodinia", "bfs", 0.1, 120),
            DseWorkloadSpec("rodinia", "hotspot", 0.1, 120),
            DseWorkloadSpec("rodinia", "lud", 0.1, 120),
        ]
    else:
        specs = [
            DseWorkloadSpec("rodinia", "bfs", 0.1, 24 if quick else 60),
            DseWorkloadSpec("rodinia", "hotspot", 0.1, 24 if quick else 60),
        ]
    methods = ["photon", "stem"]

    cold_rows, cold_s = timed(
        lambda: run_dse(workloads=specs, methods=methods, repetitions=1)
    )
    sim_cache = SimResultCache(sim_root)
    seed_rows, seed_s = timed(
        lambda: run_dse(
            workloads=specs, methods=methods, repetitions=1, sim_cache=sim_cache
        )
    )
    warm_rows, warm_s = timed(
        lambda: run_dse(
            workloads=specs, methods=methods, repetitions=1, sim_cache=sim_cache
        )
    )

    identical = cold_rows == seed_rows == warm_rows
    return {
        "workloads": [spec.name for spec in specs],
        "methods": methods,
        "cold_seconds": cold_s,
        "first_cached_seconds": seed_s,
        "warm_seconds": warm_s,
        "warm_speedup": (cold_s / warm_s) if warm_s > 0 else None,
        "rows_identical": identical,
        "sim_cache": cache_stats(sim_cache),
    }


def bench_dedup(quick: bool) -> Dict[str, object]:
    workload = load_workload("rodinia", "bfs", scale=0.2, seed=0)
    draws_n = 200 if quick else 1000
    unique_n = max(4, len(workload) // 8)
    rng = np.random.default_rng(0)
    draws = rng.integers(0, unique_n, size=draws_n).tolist()

    def run(dedup: bool):
        return GpuSimulator(RTX_2080).simulate_workload(
            workload, draws, seed=3, dedup=dedup
        )

    plain, plain_s = timed(lambda: run(False))
    deduped, dedup_s = timed(lambda: run(True))
    identical = (
        plain.aggregate.as_dict() == deduped.aggregate.as_dict()
        and [r.cycles for r in plain.kernel_results]
        == [r.cycles for r in deduped.kernel_results]
    )
    return {
        "draws": draws_n,
        "unique_invocations": unique_n,
        "plain_seconds": plain_s,
        "dedup_seconds": dedup_s,
        "dedup_speedup": (plain_s / dedup_s) if dedup_s > 0 else None,
        "results_identical": identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny workloads for CI smoke runs (finishes in seconds)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_memo.json",
        help="output report path (default BENCH_memo.json)",
    )
    args = parser.parse_args(argv)

    report: Dict[str, object] = {
        "quick": bool(args.quick),
        "full": FULL,
        "cpu_count": os.cpu_count(),
    }

    with tempfile.TemporaryDirectory(prefix="bench-memo-") as tmp:
        sweep = bench_sweep(args.quick, os.path.join(tmp, "sweep-sim"))
        report["sweep"] = sweep
        print(
            f"sweep: cold {sweep['cold_seconds']:.2f}s -> warm "
            f"{sweep['warm_seconds']:.2f}s ({sweep['warm_speedup']:.2f}x), "
            f"sim-cache hit rate {sweep['sim_cache']['hit_rate']:.2f}, "
            f"tree-cache hit rate {sweep['tree_cache']['hit_rate']:.2f}"
        )

        dse = bench_dse(args.quick, os.path.join(tmp, "dse-sim"))
        report["dse"] = dse
        print(
            f"dse:   cold {dse['cold_seconds']:.2f}s -> warm "
            f"{dse['warm_seconds']:.2f}s ({dse['warm_speedup']:.2f}x), "
            f"sim-cache hit rate {dse['sim_cache']['hit_rate']:.2f}"
        )

    dedup = bench_dedup(args.quick)
    report["dedup"] = dedup
    print(
        f"dedup: {dedup['draws']} draws over {dedup['unique_invocations']} "
        f"invocations, {dedup['plain_seconds']:.2f}s -> "
        f"{dedup['dedup_seconds']:.2f}s ({dedup['dedup_speedup']:.2f}x)"
    )

    ok = bool(
        report["sweep"]["points_identical"]
        and report["dse"]["rows_identical"]
        and report["dedup"]["results_identical"]
    )
    report["all_identical"] = ok

    write_bench_report(
        args.out,
        report,
        command="bench_memo",
        label="quick" if args.quick else ("full" if FULL else "default"),
        config={
            "quick": bool(args.quick),
            "full": FULL,
            "epsilons": sweep["epsilons"],
            "workload_scale": sweep["workload_scale"],
            "repetitions": sweep["repetitions"],
        },
        metrics={
            "warm_sweep_speedup": sweep["warm_speedup"],
            "warm_dse_speedup": dse["warm_speedup"],
            "dedup_speedup": dedup["dedup_speedup"],
            "all_identical": ok,
            "cache": {
                "sim_cache": {"hit_rate": sweep["sim_cache"]["hit_rate"]},
                "tree_cache": {"hit_rate": sweep["tree_cache"]["hit_rate"]},
            },
        },
    )
    print(f"report written to {args.out}")

    if not ok:
        print("FAIL: memoized results differ from the plain path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
