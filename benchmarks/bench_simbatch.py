"""Benchmark the batched SoA wave engine against the scalar event loop.

Standalone script (like ``bench_memo.py``, not pytest-driven).  Two
measurements per workload, both gated on *bit-identity* — equality
failures exit non-zero at any scale, they are the acceptance criterion:

1. **engine** — generate every trace once, then time the scalar
   per-trace event loop against :func:`repro.sim.batch.execute_wave_batch`
   over the same traces.  This isolates the lock-step engine itself;
   ``sim_batch_speedup`` (geometric mean across workloads) is the
   SLO-gated number.
2. **end-to-end** — ``simulate_workload`` with the default batching
   policy vs. with batching disabled.  Includes trace generation and
   post-processing, so it is the user-visible win (smaller than the
   engine ratio because trace generation is shared by both paths).

Usage::

    python benchmarks/bench_simbatch.py --quick
    python benchmarks/bench_simbatch.py --out BENCH_simbatch.json

``--quick`` shrinks the workloads so CI finishes in well under a
minute.  The default scale runs Table-4-sized workload sweeps
(thousands of invocations per network) where the engine shows its >=5x.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _shared import write_bench_report

import numpy as np

from repro.hardware import RTX_2080
from repro.sim import BatchPolicy, GpuSimulator, execute_wave_batch
from repro.sim.simulator import _EVENT_FIELDS
from repro.workloads import load_workload

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def geomean(values: List[float]) -> float:
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=np.float64)))))


def results_equal(a, b) -> bool:
    if len(a.kernel_results) != len(b.kernel_results):
        return False
    for ra, rb in zip(a.kernel_results, b.kernel_results):
        if (
            ra.invocation_index != rb.invocation_index
            or ra.cycles != rb.cycles
            or ra.wave_cycles != rb.wave_cycles
            or ra.stats.as_dict() != rb.stats.as_dict()
        ):
            return False
    return a.aggregate.as_dict() == b.aggregate.as_dict()


def bench_engine(suite: str, name: str, scale: float, seed: int) -> Dict[str, object]:
    """Scalar event loop vs lock-step engine over identical traces."""
    workload = load_workload(suite, name, scale=scale, seed=0)
    sim = GpuSimulator(RTX_2080)
    traces = [
        sim.tracer.generate(workload.invocation(i), seed=seed)
        for i in range(len(workload))
    ]

    scalar, scalar_s = timed(lambda: [sim._execute_trace(t) for t in traces])
    (batched, report), batched_s = timed(
        lambda: execute_wave_batch(traces, sim.latencies, sim.config, sim.batch_policy)
    )

    identical = all(
        sc == bc and ss.as_dict() == bs.as_dict()
        for (sc, ss), (bc, bs) in zip(scalar, batched)
    )
    return {
        "workload": f"{suite}/{name}",
        "scale": scale,
        "invocations": len(traces),
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": (scalar_s / batched_s) if batched_s > 0 else None,
        "identical": identical,
        "batched_lanes": report.batched_lanes,
        "scalar_lanes": report.scalar_lanes,
        "chunks": report.chunks,
        "fill_ratio": report.fill_ratio,
    }


def bench_end_to_end(
    suite: str, name: str, scale: float, seed: int
) -> Dict[str, object]:
    """simulate_workload with batching on (default) vs off."""
    workload = load_workload(suite, name, scale=scale, seed=0)

    on, on_s = timed(
        lambda: GpuSimulator(RTX_2080).simulate_workload(workload, seed=seed)
    )
    off, off_s = timed(
        lambda: GpuSimulator(
            RTX_2080, batch_policy=BatchPolicy(enabled=False)
        ).simulate_workload(workload, seed=seed)
    )
    return {
        "workload": f"{suite}/{name}",
        "scale": scale,
        "invocations": len(workload),
        "batched_seconds": on_s,
        "scalar_seconds": off_s,
        "speedup": (off_s / on_s) if on_s > 0 else None,
        "identical": results_equal(on, off),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny workloads for CI smoke runs (finishes in seconds)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_simbatch.json",
        help="output report path (default BENCH_simbatch.json)",
    )
    args = parser.parse_args(argv)

    if FULL:
        engine_specs = [
            ("huggingface", "gpt2", 0.002),
            ("huggingface", "deit", 0.002),
            ("huggingface", "resnet50", 0.002),
            ("huggingface", "bloom", 0.002),
            ("rodinia", "cfd", 0.1),
        ]
        e2e_specs = [("huggingface", "deit", 0.002), ("rodinia", "srad", 0.1)]
    elif args.quick:
        engine_specs = [
            ("rodinia", "cfd", 0.1),
            ("rodinia", "srad", 0.1),
        ]
        e2e_specs = [("rodinia", "srad", 0.1)]
    else:
        engine_specs = [
            ("huggingface", "gpt2", 0.002),
            ("huggingface", "deit", 0.002),
            ("huggingface", "resnet50", 0.002),
        ]
        e2e_specs = [("huggingface", "deit", 0.002)]

    report: Dict[str, object] = {
        "quick": bool(args.quick),
        "full": FULL,
        "cpu_count": os.cpu_count(),
        "event_fields": len(_EVENT_FIELDS),
    }

    engine_rows = []
    for suite, name, scale in engine_specs:
        row = bench_engine(suite, name, scale, seed=0)
        engine_rows.append(row)
        print(
            f"engine {row['workload']:24s} n={row['invocations']:5d} "
            f"scalar {row['scalar_seconds']:7.2f}s -> batched "
            f"{row['batched_seconds']:6.2f}s ({row['speedup']:.2f}x) "
            f"fill={row['fill_ratio']:.2f} identical={row['identical']}"
        )
    report["engine"] = engine_rows

    e2e_rows = []
    for suite, name, scale in e2e_specs:
        row = bench_end_to_end(suite, name, scale, seed=0)
        e2e_rows.append(row)
        print(
            f"e2e    {row['workload']:24s} n={row['invocations']:5d} "
            f"scalar {row['scalar_seconds']:7.2f}s -> batched "
            f"{row['batched_seconds']:6.2f}s ({row['speedup']:.2f}x) "
            f"identical={row['identical']}"
        )
    report["end_to_end"] = e2e_rows

    engine_speedup = geomean([row["speedup"] for row in engine_rows])
    e2e_speedup = geomean([row["speedup"] for row in e2e_rows])
    parity = all(
        row["identical"] for row in engine_rows + e2e_rows
    )
    report["engine_speedup_geomean"] = engine_speedup
    report["end_to_end_speedup_geomean"] = e2e_speedup
    report["all_identical"] = parity
    print(
        f"engine speedup (geomean) {engine_speedup:.2f}x, "
        f"end-to-end {e2e_speedup:.2f}x, parity={'OK' if parity else 'FAIL'}"
    )

    write_bench_report(
        args.out,
        report,
        command="bench_simbatch",
        label="quick" if args.quick else ("full" if FULL else "default"),
        config={
            "quick": bool(args.quick),
            "full": FULL,
            "engine_workloads": [r["workload"] for r in engine_rows],
        },
        metrics={
            "sim_batch_speedup": engine_speedup,
            "sim_batch_e2e_speedup": e2e_speedup,
            # Float on purpose: `repro obs check` metric floors skip bools.
            "sim_batch_parity": 1.0 if parity else 0.0,
        },
    )
    return 0 if parity else 1


if __name__ == "__main__":
    raise SystemExit(main())
