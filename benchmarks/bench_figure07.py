"""Figure 7: per-workload speedups of the four methods (Rodinia+CASIO)."""

from _shared import show, suite_rows
from repro.analysis import render_table
from repro.experiments.speedup_error import per_workload_summary


def run():
    rows = list(suite_rows("rodinia")) + list(suite_rows("casio"))
    return per_workload_summary(rows)


def test_figure7(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ["random", "pka", "sieve", "photon", "stem"]
    rendered = [
        [workload] + [table[workload][m]["speedup"] for m in methods]
        for workload in sorted(table)
    ]
    show(
        render_table(
            ["workload"] + methods,
            rendered,
            title="Figure 7: per-workload speedup (x, harmonic mean over reps)",
        )
    )
    # Every method accelerates every workload.
    for workload, per_method in table.items():
        for method in methods:
            speedup = per_method[method]["speedup"]
            assert speedup != speedup or speedup >= 1.0, (workload, method)
