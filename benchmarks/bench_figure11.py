"""Figure 11: error-bound (epsilon) sweep — speedup vs error tradeoff."""

from _shared import show, suite_config
from repro.analysis import render_table
from repro.experiments.error_bound_sweep import (
    DEFAULT_EPSILONS,
    PAPER_FIGURE11,
    run_error_bound_sweep,
)


def run():
    return run_error_bound_sweep(
        epsilons=DEFAULT_EPSILONS, config=suite_config("casio")
    )


def test_figure11(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for p in points:
        paper = PAPER_FIGURE11.get(p.epsilon)
        rows.append(
            [
                f"{p.epsilon:.0%}",
                p.speedup,
                p.error_percent,
                p.mean_samples,
                paper[0] if paper else float("nan"),
                paper[1] if paper else float("nan"),
            ]
        )
    show(
        render_table(
            ["epsilon", "speedup x", "error %", "avg samples", "paper speedup", "paper err %"],
            rows,
            title="Figure 11: impact of the error bound on speedup and error",
        )
    )

    # Monotone tradeoff: larger epsilon -> fewer samples, more speedup;
    # and the realized error always respects the requested bound.
    for tight, loose in zip(points, points[1:]):
        assert loose.mean_samples <= tight.mean_samples
        assert loose.speedup >= tight.speedup * 0.95
    for p in points:
        assert p.error_percent <= p.epsilon * 100.0
