"""Observability overhead: disabled-mode instrumentation must be ~free.

Two measurements:

1. **Pipeline comparison** — wall-clock of the profile→cluster→plan→
   evaluate pipeline with observability disabled vs. enabled, reported
   for context (the enabled mode is allowed to cost more; that is the
   price of a trace).
2. **Disabled-mode bound** — the assertion.  Comparing two noisy
   pipeline runs cannot resolve sub-percent differences, so the bound is
   computed directly: (cost of one no-op obs call, measured over 200k
   calls) x (number of instrumentation hits the pipeline actually
   performs, counted from an enabled run) must stay under 2% of the
   disabled pipeline's wall-clock.

Run standalone (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``,
which also writes BENCH_obs.json and ledger-records the overhead) or via
pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import obs
from repro.baselines import ProfileStore
from repro.core import StemRootSampler, evaluate_plan
from repro.hardware import get_preset
from repro.workloads import load_workload

REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.02


def _pipeline(store: ProfileStore) -> None:
    plan = StemRootSampler().build_plan_from_store(store, seed=0)
    evaluate_plan(plan, store.execution_times())


def _fresh_store() -> ProfileStore:
    # A new store each run so profiling is not served from cache.
    workload = load_workload("rodinia", "bfs", scale=1.0, seed=0)
    return ProfileStore(workload, get_preset("rtx2080"), seed=0)


def _best_seconds(enabled: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        store = _fresh_store()
        if enabled:
            with obs.scoped():
                start = time.perf_counter()
                _pipeline(store)
                best = min(best, time.perf_counter() - start)
        else:
            start = time.perf_counter()
            _pipeline(store)
            best = min(best, time.perf_counter() - start)
    return best


def _noop_call_seconds(calls: int = 200_000) -> float:
    """Average cost of one disabled span + one disabled counter inc."""
    assert not obs.is_enabled()
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop"):
            obs.inc("bench.noop")
    return (time.perf_counter() - start) / calls


def _instrumentation_hits() -> int:
    """How many obs call sites one pipeline run actually exercises."""
    with obs.scoped() as session:
        _pipeline(_fresh_store())
        snapshot = session.metrics.snapshot()
        spans = len(session.tracer.finished())
    counter_incs = sum(snapshot["counters"].values())
    observations = sum(h["count"] for h in snapshot["histograms"].values())
    gauge_sets = len(snapshot["gauges"])
    return spans + counter_incs + observations + gauge_sets


def measure() -> dict:
    assert not obs.is_enabled()
    disabled = _best_seconds(enabled=False)
    enabled = _best_seconds(enabled=True)
    per_call = _noop_call_seconds()
    hits = _instrumentation_hits()
    estimated_overhead = per_call * hits / disabled

    print()
    print(f"pipeline disabled        : {disabled * 1e3:8.2f} ms")
    print(f"pipeline enabled         : {enabled * 1e3:8.2f} ms "
          f"({(enabled / disabled - 1) * 100:+.1f}%)")
    print(f"no-op span+counter cost  : {per_call * 1e9:8.1f} ns/call")
    print(f"instrumentation hits/run : {hits:8d}")
    print(f"disabled-mode overhead   : {estimated_overhead * 100:8.3f}% "
          f"(bound {MAX_DISABLED_OVERHEAD * 100:.0f}%)")

    return {
        "repeats": REPEATS,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "noop_call_seconds": per_call,
        "instrumentation_hits": hits,
        "disabled_overhead": estimated_overhead,
        "bound": MAX_DISABLED_OVERHEAD,
    }


def test_disabled_overhead_under_bound():
    report = measure()
    assert report["disabled_overhead"] < MAX_DISABLED_OVERHEAD, (
        f"disabled-mode obs overhead {report['disabled_overhead']:.2%} "
        f"exceeds {MAX_DISABLED_OVERHEAD:.0%}"
    )


if __name__ == "__main__":
    from _shared import write_bench_report

    report = measure()
    write_bench_report(
        "BENCH_obs.json",
        report,
        command="bench_obs_overhead",
        label="default",
        config={"repeats": REPEATS},
        metrics={"disabled_overhead": report["disabled_overhead"]},
    )
    print("report written to BENCH_obs.json")
    if report["disabled_overhead"] >= MAX_DISABLED_OVERHEAD:
        print(
            f"FAIL: disabled-mode overhead {report['disabled_overhead']:.2%} "
            f"exceeds {MAX_DISABLED_OVERHEAD:.0%}",
            file=sys.stderr,
        )
        raise SystemExit(1)
