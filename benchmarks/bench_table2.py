"""Table 2: scale summary of the three benchmark suites."""

from _shared import show
from repro.analysis import render_table
from repro.experiments.table2 import PAPER_TABLE2, run_table2


def test_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    rendered = []
    for row in rows:
        paper = PAPER_TABLE2[row.suite]
        rendered.append(
            [
                row.suite,
                row.num_workloads,
                row.avg_execution_seconds,
                row.avg_kernel_calls,
                paper[0],
                paper[1],
                paper[2],
            ]
        )
    show(
        render_table(
            [
                "suite", "workloads", "avg exec s", "avg kernel calls",
                "paper n", "paper exec s", "paper calls",
            ],
            rendered,
            title="Table 2: workloads used in the evaluation",
        )
    )

    by_suite = {r.suite: r for r in rows}
    # The scale ordering the evaluation relies on: Rodinia (thousands of
    # calls) << CASIO (tens of thousands) << HuggingFace (millions).
    assert by_suite["rodinia"].avg_kernel_calls < 5_000
    assert 10_000 < by_suite["casio"].avg_kernel_calls < 200_000
    assert by_suite["huggingface"].avg_kernel_calls > 900_000
    assert by_suite["rodinia"].num_workloads >= 13
    assert by_suite["casio"].num_workloads == 11
    assert by_suite["huggingface"].num_workloads == 6
