"""Figure 10: time spreads of kernels prior methods call "identical"."""

from _shared import FULL, show
from repro.analysis import render_histogram, render_table
from repro.experiments.identical_kernels import run_identical_kernels


def test_figure10(benchmark):
    groups = benchmark.pedantic(
        run_identical_kernels,
        kwargs={"workload_scale": 1.0 if FULL else 0.25},
        rounds=1,
        iterations=1,
    )
    rows = []
    for method, entries in groups.items():
        for g in entries:
            rows.append(
                [method, g.label, g.size, g.min_time_us, g.max_time_us, g.spread_factor, g.cov]
            )
    show(
        render_table(
            ["method", "group", "size", "min us", "max us", "max/min", "CoV"],
            rows,
            title='Figure 10: execution times of "identical" kernels (DLRM)',
        )
    )
    for method, entries in groups.items():
        top = entries[0]
        show(
            render_histogram(
                top.times, bins=24,
                title=f"{method} treats these {top.size} launches as one kernel:",
            )
        )

    # Paper's point: PKA's cluster 0 spans 2-11 us (a >2x spread); one
    # proxy sample cannot represent such a group.
    for method, entries in groups.items():
        assert max(g.spread_factor for g in entries) > 2.0, method
