"""Figure 9: speedup-vs-error scatter on CASIO and HuggingFace."""

import numpy as np

from _shared import show, suite_rows
from repro.analysis import ScatterPoint, render_scatter, render_table
from repro.experiments.speedup_error import per_workload_summary


def run():
    casio = per_workload_summary(list(suite_rows("casio")))
    hf = per_workload_summary(list(suite_rows("huggingface")))
    return casio, hf


def test_figure9(benchmark):
    casio, hf = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, table, methods in (
        ("CASIO", casio, ["random", "pka", "sieve", "photon", "stem"]),
        ("HuggingFace", hf, ["random", "stem"]),
    ):
        rows = []
        for workload in sorted(table):
            for method in methods:
                cell = table[workload][method]
                if cell["speedup"] != cell["speedup"]:
                    continue  # N/A methods
                rows.append([workload, method, cell["speedup"], cell["error_percent"]])
        show(
            render_table(
                ["workload", "method", "speedup x", "error %"],
                rows,
                title=f"Figure 9 ({label}): scatter points (speedup, error)",
            )
        )
        points = [
            ScatterPoint(x=row[2], y=max(row[3], 1e-3), series=row[1])
            for row in rows
        ]
        show(
            render_scatter(
                points,
                log_x=True,
                title=f"Figure 9 ({label}): error vs speedup (log x)",
                x_label="speedup",
                y_label="error %",
            )
        )

    # STEM occupies the paper's sweet spot: near-zero error with large
    # speedups — on every workload its error beats uniform random.
    for table in (casio, hf):
        for workload, per_method in table.items():
            stem_err = per_method["stem"]["error_percent"]
            random_err = per_method["random"]["error_percent"]
            assert stem_err <= random_err or stem_err < 1.0, workload
    hf_stem = [hf[w]["stem"] for w in hf]
    assert float(np.mean([c["error_percent"] for c in hf_stem])) < 5.0
    assert all(c["speedup"] > 100 for c in hf_stem)
