"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper.  Run
with ``pytest benchmarks/ --benchmark-only -s`` to see the rendered
paper-vs-measured tables (pytest captures stdout without ``-s``).

Scale control: benches default to reduced workload scales and 3
repetitions so the whole harness completes in minutes.  Set
``REPRO_BENCH_FULL=1`` for paper-scale workloads and 10 repetitions.
EXPERIMENTS.md records results from a full run.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentConfig, ResultRow, run_suite
from repro.experiments.speedup_error import summarize

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Schema tag stamped into every BENCH_*.json this harness writes.
BENCH_SCHEMA_VERSION = 1

#: (workload_scale, repetitions) per suite at bench scale.
SUITE_SETTINGS: Dict[str, Tuple[float, int]] = (
    {
        "rodinia": (1.0, 10),
        "casio": (1.0, 10),
        "huggingface": (0.5, 5),
    }
    if FULL
    else {
        "rodinia": (1.0, 3),
        "casio": (0.25, 3),
        "huggingface": (0.05, 2),
    }
)


def suite_config(suite: str) -> ExperimentConfig:
    scale, reps = SUITE_SETTINGS[suite]
    return ExperimentConfig(repetitions=reps, workload_scale=scale)


@lru_cache(maxsize=None)
def suite_rows(suite: str) -> Tuple[ResultRow, ...]:
    """Run (and cache) the full method grid for one suite."""
    return tuple(run_suite(suite, config=suite_config(suite)))


def table3_summaries(suites: Tuple[str, ...] = ("rodinia", "casio", "huggingface")):
    rows: List[ResultRow] = []
    for suite in suites:
        rows.extend(suite_rows(suite))
    return rows, summarize(rows)


@lru_cache(maxsize=None)
def dse_results():
    """Run (and cache) the DSE grid shared by Table 4 and Figure 12."""
    from repro.experiments.dse import default_dse_workloads, run_dse

    max_inv = 200 if FULL else 100
    reps = 3 if FULL else 2
    return tuple(run_dse(workloads=default_dse_workloads(max_inv), repetitions=reps))


def show(text: str) -> None:
    """Print a rendered table with a blank line around it."""
    print("\n" + text + "\n")


def write_bench_report(
    path: str,
    payload: Dict[str, object],
    command: str,
    label: str = "",
    config: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write one BENCH_*.json and append a matching run-ledger record.

    Stamps ``schema_version`` into the payload, then records the run in
    the ledger (``$REPRO_RUNS_DIR`` or ``.repro/runs``; an empty
    ``REPRO_RUNS_DIR`` disables recording).  ``metrics`` are the
    SLO-relevant numbers (``warm_sweep_speedup``, cache hit rates, …)
    that ``repro obs check`` enforces budgets against; ``config`` is the
    run's identity (scale, repetitions, jobs) and feeds the record's
    ``run_id`` so histories group correctly.
    """
    from repro import obs

    payload = dict(payload)
    payload.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    runs_dir = os.environ.get(obs.RUNS_DIR_ENV)
    if runs_dir is None:
        runs_dir = obs.DEFAULT_RUNS_DIR
    if runs_dir:
        record = obs.build_run_record(
            command=command,
            label=label,
            config=dict(config or {}),
            extra_metrics=dict(metrics or {}),
        )
        ledger = obs.RunLedger(runs_dir)
        ledger.append(record)
        print(f"ledger: run {record.run_id} appended to {ledger.path}")
    return payload
