"""Figure 12: sampled vs full cycle counts across uarch changes."""

import numpy as np

from _shared import dse_results, show
from repro.analysis import render_table
from repro.experiments.dse import VARIANT_LABELS


def test_figure12(benchmark):
    results = benchmark.pedantic(lambda: dse_results(), rounds=1, iterations=1)

    # Show a per-workload cycle-count comparison for STEM and the worst
    # baseline, like the paper's grouped bars.
    rows = []
    for row in results:
        if row.method not in ("stem", "sieve"):
            continue
        rows.append(
            [
                row.workload,
                row.variant,
                row.method,
                row.full_cycles / 1e6,
                row.estimated_cycles / 1e6,
                row.error_percent,
            ]
        )
    show(
        render_table(
            ["workload", "variant", "method", "full Mcyc", "sampled Mcyc", "err %"],
            rows[:60],
            title="Figure 12: sampled vs full simulation cycle counts (excerpt)",
        )
    )

    # STEM's estimates track the ground truth on every variant: mean
    # error across workloads stays in single digits everywhere.
    for variant in VARIANT_LABELS:
        stem_errors = [
            r.error_percent
            for r in results
            if r.method == "stem" and r.variant == variant
        ]
        assert stem_errors
        assert float(np.mean(stem_errors)) < 10.0, variant
