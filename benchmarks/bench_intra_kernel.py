"""Intra-kernel (wave-level) sampling — Sec. 7.3's orthogonal dimension.

Kernel-level sampling picks which launches to simulate; intra-kernel
sampling shortens each simulated launch by detecting per-wave stability.
This bench measures both the standalone accuracy of adaptive wave
sampling and the combined kernel-level x wave-level speedup.
"""

import numpy as np

from _shared import FULL, show
from repro.analysis import render_table
from repro.baselines import ProfileStore
from repro.core import StemRootSampler
from repro.hardware import RTX_2080
from repro.sim import AdaptiveWaveSimulator
from repro.workloads import load_workload

WORKLOADS = ["hotspot", "cfd", "srad"]


def run():
    rows = []
    for name in WORKLOADS:
        workload = load_workload("rodinia", name, scale=0.1, seed=0)
        limit = 20 if FULL else 8
        picks = np.linspace(0, len(workload) - 1, min(limit, len(workload))).astype(int)
        sampler = AdaptiveWaveSimulator(RTX_2080)
        errors, fractions = [], []
        for index in np.unique(picks):
            result = sampler.simulate(workload, int(index), seed=1, compute_full=True)
            if result.error_percent is not None:
                errors.append(result.error_percent)
            fractions.append(result.wave_fraction)
        # Combined: kernel-level plan fraction x wave fraction.
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler().build_plan_from_store(store, seed=0)
        kernel_fraction = len(plan.unique_indices()) / len(workload)
        rows.append(
            [
                name,
                float(np.mean(errors)),
                float(np.mean(fractions)),
                kernel_fraction,
                float(np.mean(fractions)) * kernel_fraction,
            ]
        )
    return rows


def test_intra_kernel(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        render_table(
            [
                "workload", "wave-sampling err %", "waves simulated",
                "kernels simulated", "combined fraction",
            ],
            rows,
            title="Intra-kernel sampling accuracy and combined reduction",
        )
    )
    for name, error, wave_fraction, _kernel_fraction, combined in rows:
        # Wave-level estimates stay accurate while skipping most waves...
        assert error < 10.0, name
        assert wave_fraction <= 1.0
        # ...and composing the two levels multiplies the reduction.
        assert combined <= wave_fraction
