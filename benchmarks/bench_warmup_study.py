"""Sec. 6.2 warmup study: sampling error under warmup assumptions.

Paper reference: flushing L2 between every kernel moved STEM's error by
only 0.70% (Rodinia) / 0.07% (CASIO) because most cache reuse is
intra-kernel.  Here the same plans are scored against cycle-level ground
truths generated cold, with proportional residual warmup, and with a
short warmup kernel.
"""

import numpy as np

from _shared import FULL, show
from repro.analysis import render_table
from repro.experiments.warmup_study import run_warmup_study


def test_warmup_study(benchmark):
    rows = benchmark.pedantic(
        run_warmup_study,
        kwargs={
            "repetitions": 3 if FULL else 2,
            "max_invocations": 120 if FULL else 60,
        },
        rounds=1,
        iterations=1,
    )
    show(
        render_table(
            ["workload", "warmup", "error %", "total Mcycles"],
            [[r.workload, r.strategy, r.error_percent, r.total_cycles / 1e6] for r in rows],
            title="Warmup-assumption sensitivity of STEM's sampling error",
        )
    )

    # The error moves little between warmup assumptions (paper: <1%).
    by_workload = {}
    for r in rows:
        by_workload.setdefault(r.workload, {})[r.strategy] = r.error_percent
    for workload, per_strategy in by_workload.items():
        spread = max(per_strategy.values()) - min(per_strategy.values())
        assert spread < 5.0, (workload, per_strategy)
    # Warmup shortens ground-truth cycles (caches start non-empty).
    cold = [r.total_cycles for r in rows if r.strategy == "cold"]
    warm = [r.total_cycles for r in rows if r.strategy == "warmup-kernel"]
    assert float(np.mean(warm)) < float(np.mean(cold))
