"""Benchmark the parallel grid executor against the sequential runner.

Standalone script (not pytest-driven like the table/figure benches):
it times the same experiment grid at several ``--jobs`` settings,
verifies every parallel run produces *exactly* the rows of the
sequential run, and writes a machine-readable report.

Usage::

    python benchmarks/bench_parallel.py --quick
    python benchmarks/bench_parallel.py --jobs 1,2,4 --out BENCH_parallel.json

The ``--quick`` preset shrinks the grid so the whole script finishes in
about a minute on a laptop — CI runs it as a smoke test.  Speedup is
reported relative to ``jobs=1``; on multi-core runners the warm-cache
grid should reach >=3x at ``jobs=4``.  The equality check is the real
acceptance criterion and holds at any core count.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _shared import write_bench_report

from repro.experiments.runner import ExperimentConfig, ResultRow, run_suite
from repro.parallel import ProfileCache, SupervisionPolicy


def rows_equal(a: List[ResultRow], b: List[ResultRow]) -> bool:
    """Exact row-list equality, treating NaN == NaN (N/A cells)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        da, db = ra.as_dict(), rb.as_dict()
        if set(da) != set(db):
            return False
        for key, va in da.items():
            vb = db[key]
            if isinstance(va, float) and isinstance(vb, float):
                if math.isnan(va) and math.isnan(vb):
                    continue
                if va != vb:
                    return False
            elif va != vb:
                return False
    return True


def run_grid(
    suite: str,
    config: ExperimentConfig,
    jobs: int,
    cache_root: Optional[str],
    policy: Optional[SupervisionPolicy] = None,
) -> Dict[str, object]:
    cache = ProfileCache(cache_root) if cache_root else None
    start = time.perf_counter()
    rows = run_suite(
        suite, config=config, jobs=jobs, profile_cache=cache, policy=policy
    )
    elapsed = time.perf_counter() - start
    return {"jobs": jobs, "seconds": elapsed, "rows": rows}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke runs (rodinia at scale 0.05, 2 reps)",
    )
    parser.add_argument(
        "--suite", default="rodinia", help="workload suite to run (default rodinia)"
    )
    parser.add_argument(
        "--jobs",
        default="1,2,4",
        help="comma-separated jobs settings to time (default 1,2,4)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="output report path (default BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    job_settings = [int(j) for j in args.jobs.split(",") if j.strip()]
    if 1 not in job_settings:
        job_settings.insert(0, 1)

    if args.quick:
        config = ExperimentConfig(repetitions=2, workload_scale=0.05)
    else:
        config = ExperimentConfig(repetitions=3, workload_scale=0.25)

    report: Dict[str, object] = {
        "suite": args.suite,
        "quick": bool(args.quick),
        "repetitions": config.repetitions,
        "workload_scale": config.workload_scale,
        "cpu_count": os.cpu_count(),
        "runs": [],
    }

    with tempfile.TemporaryDirectory(prefix="bench-profile-cache-") as cache_root:
        # Cold pass at jobs=1 warms the shared profile cache and fixes
        # the reference rows; subsequent passes are timed warm-cache.
        cold = run_grid(args.suite, config, jobs=1, cache_root=cache_root)
        print(
            f"cold jobs=1: {cold['seconds']:.2f}s "
            f"({len(cold['rows'])} rows, cache warmed)"
        )

        baseline_rows: Optional[List[ResultRow]] = None
        baseline_seconds: Optional[float] = None
        ok = True
        for jobs in job_settings:
            run = run_grid(args.suite, config, jobs=jobs, cache_root=cache_root)
            rows = run["rows"]
            if jobs == 1:
                baseline_rows, baseline_seconds = rows, run["seconds"]
            equal = baseline_rows is None or rows_equal(rows, baseline_rows)
            ok = ok and equal
            speedup = (
                baseline_seconds / run["seconds"]
                if baseline_seconds and run["seconds"] > 0
                else None
            )
            report["runs"].append(
                {
                    "jobs": jobs,
                    "seconds": run["seconds"],
                    "rows": len(rows),
                    "speedup_vs_jobs1": speedup,
                    "rows_equal_jobs1": equal,
                }
            )
            note = "" if equal else "  ROWS DIFFER FROM SEQUENTIAL"
            spd = f"  {speedup:.2f}x" if speedup else ""
            print(f"warm jobs={jobs}: {run['seconds']:.2f}s{spd}{note}")

        # Supervision overhead: the self-healing supervisor is the
        # default pool path, so its fault-free cost over the legacy
        # single-dispatch pool is an SLO (<=2%).  Min-of-2 per mode
        # filters scheduler noise at this small a grid.
        overhead_jobs = max(job_settings)
        sup_policy = SupervisionPolicy()
        unsup_policy = SupervisionPolicy(enabled=False)
        sup_rows: Optional[List[ResultRow]] = None
        unsup_rows: Optional[List[ResultRow]] = None
        sup_s = unsup_s = float("inf")
        for _ in range(2):
            run = run_grid(args.suite, config, overhead_jobs, cache_root,
                           policy=sup_policy)
            sup_s, sup_rows = min(sup_s, run["seconds"]), run["rows"]
            run = run_grid(args.suite, config, overhead_jobs, cache_root,
                           policy=unsup_policy)
            unsup_s, unsup_rows = min(unsup_s, run["seconds"]), run["rows"]
        overhead = sup_s / unsup_s - 1.0 if unsup_s > 0 else None
        sup_equal = rows_equal(sup_rows, unsup_rows)
        ok = ok and sup_equal
        report["supervision"] = {
            "jobs": overhead_jobs,
            "supervised_seconds": sup_s,
            "unsupervised_seconds": unsup_s,
            "overhead": overhead,
            "rows_equal": sup_equal,
        }
        print(
            f"supervision overhead @ jobs={overhead_jobs}: "
            f"{sup_s:.2f}s supervised vs {unsup_s:.2f}s unsupervised "
            f"({overhead:+.1%})"
        )

        cache = ProfileCache(cache_root)
        report["profile_cache_entries"] = len(cache)

    report["rows_identical"] = ok
    speedups = {
        run["jobs"]: run["speedup_vs_jobs1"]
        for run in report["runs"]
        if run["speedup_vs_jobs1"]
    }
    max_jobs = max(speedups) if speedups else 1
    write_bench_report(
        args.out,
        report,
        command="bench_parallel",
        label="quick" if args.quick else "default",
        config={
            "suite": args.suite,
            "quick": bool(args.quick),
            "jobs": job_settings,
            "repetitions": config.repetitions,
            "workload_scale": config.workload_scale,
        },
        metrics={
            "rows_identical": ok,
            "max_jobs": max_jobs,
            "parallel_speedup": speedups.get(max_jobs),
            "supervision_overhead": report["supervision"]["overhead"],
        },
    )
    print(f"report written to {args.out}")

    if not ok:
        print("FAIL: parallel rows differ from sequential", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
