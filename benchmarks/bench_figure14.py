"""Figure 14: microarchitectural metrics, full vs sampled (bert_infer)."""

import numpy as np

from _shared import FULL, show
from repro.analysis import render_table
from repro.experiments.microarch_metrics import run_microarch_validation


def run():
    return run_microarch_validation(
        workload_name="bert_infer",
        repetitions=5 if FULL else 3,
        workload_scale=1.0 if FULL else 0.25,
    )


def test_figure14(benchmark):
    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [c.metric, c.full_value, c.estimated_value, c.error_percent]
        for c in comparisons
    ]
    show(
        render_table(
            ["metric", "full workload", "sampled estimate", "error %"],
            rows,
            title="Figure 14: 13 microarchitectural metrics, full vs sampled",
        )
    )

    # Paper: near-zero differences across ALL metrics despite sampling
    # purely on execution time.
    errors = np.array([c.error_percent for c in comparisons])
    assert len(errors) == 13
    assert float(errors.mean()) < 5.0
    assert float(errors.max()) < 15.0
