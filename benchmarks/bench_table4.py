"""Table 4: average DSE error across uarch variants per method."""

import numpy as np

from _shared import dse_results, show
from repro.analysis import render_table
from repro.experiments.dse import PAPER_TABLE4, VARIANT_LABELS, table4_summary


def test_table4(benchmark):
    results = benchmark.pedantic(lambda: dse_results(), rounds=1, iterations=1)
    table = table4_summary(list(results))

    methods = ["pka", "sieve", "photon", "stem"]
    rows = []
    for variant in VARIANT_LABELS:
        measured = table.get(variant, {})
        row = [variant]
        for m in methods:
            row.append(measured.get(m, float("nan")))
        for m in methods:
            row.append(PAPER_TABLE4[variant][m])
        rows.append(row)
    show(
        render_table(
            ["variant"] + [f"{m} %" for m in methods] + [f"paper {m} %" for m in methods],
            rows,
            title="Table 4: sampled-simulation error across GPU microarchitectures",
        )
    )

    # Shape: STEM has the lowest error on every variant, and its error is
    # stable (flat) across variants.
    stem_errors = []
    for variant in VARIANT_LABELS:
        measured = table[variant]
        assert measured["stem"] == min(measured.values()), (variant, measured)
        stem_errors.append(measured["stem"])
    assert max(stem_errors) - min(stem_errors) < 5.0
    assert float(np.mean(stem_errors)) < 10.0
