"""Benchmark multi-fidelity DSE: hybrid screening vs full cycle-level.

Standalone script (like ``bench_simbatch.py``, not pytest-driven).  For
each Table-4-style workload the full DSE grid (5 hardware variants,
STEM) runs twice, cold both times:

1. **cycle** — the legacy path: every variant's ground truth is a full
   cycle-level simulation of every invocation.
2. **hybrid** — every variant is analytically screened, calibrated
   against a small set of cycle-level probes and selectively escalated
   (:mod:`repro.core.fidelity`).

Two numbers gate the result:

- ``dse_hybrid_speedup`` — geometric-mean wall-clock ratio across
  workloads (SLO floor in ``[tool.repro.slo]``).
- ``fidelity_gap_bound`` — honesty parity: 1.0 iff *every* hybrid STEM
  row's error against the **true cycle-level totals** (taken from the
  cycle run) stays within the row's reported combined bound
  ``(eps(1+g) + g) * 100``.  A single dishonest row fails the bench.

Usage::

    python benchmarks/bench_fidelity.py --quick
    python benchmarks/bench_fidelity.py --out BENCH_fidelity.json

``--quick`` trims the workload list for CI; the default runs enough
200-invocation grids to demonstrate the >=10x hybrid win.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _shared import write_bench_report

import numpy as np

from repro.experiments.dse import DseWorkloadSpec, run_dse

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Minimum acceptable geomean speedup per mode (the bench's own gate;
#: the pyproject SLO floor is the cross-run regression gate).
SPEEDUP_FLOOR = {"quick": 6.0, "default": 10.0, "full": 10.0}

#: Escalation share per variant.  At 1000-invocation grids the default
#: 5% budget spends most of the hybrid wall-clock on escalations; 1%
#: keeps the bound honest (verified per row below) at a fraction of it.
ESCALATION_BUDGET = 0.01


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def geomean(values: List[float]) -> float:
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=np.float64)))))


def bench_workload(spec: DseWorkloadSpec, seed: int) -> Dict[str, object]:
    """Cold cycle vs cold hybrid DSE on one workload spec."""
    common = dict(
        workloads=[spec],
        methods=["stem"],
        repetitions=1,
        seed=seed,
        jobs=1,
    )
    cycle_rows, cycle_s = timed(lambda: run_dse(fidelity="cycle", **common))
    hybrid_rows, hybrid_s = timed(
        lambda: run_dse(
            fidelity="hybrid", escalation_budget=ESCALATION_BUDGET, **common
        )
    )

    # True per-variant totals come from the cycle run; the hybrid rows
    # carry the estimate and the honest bound they claim to satisfy.
    truth = {(r.workload, r.variant): r.full_cycles for r in cycle_rows}
    honesty = []
    for row in hybrid_rows:
        true_total = truth[(row.workload, row.variant)]
        achieved = abs(row.estimated_cycles - true_total) / true_total * 100.0
        honesty.append(
            {
                "variant": row.variant,
                "achieved_percent": achieved,
                "bound_percent": row.error_bound_percent,
                "fidelity_gap": row.fidelity_gap,
                "honest": bool(achieved <= row.error_bound_percent + 1e-9),
            }
        )
    return {
        "workload": f"{spec.suite}/{spec.name}",
        "invocations": spec.max_invocations,
        "cycle_seconds": cycle_s,
        "hybrid_seconds": hybrid_s,
        "speedup": (cycle_s / hybrid_s) if hybrid_s > 0 else None,
        "max_gap": max(r.fidelity_gap for r in hybrid_rows),
        "honesty": honesty,
        "honest": all(h["honest"] for h in honesty),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer workloads for CI smoke runs (finishes in ~30s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_fidelity.json",
        help="output report path (default BENCH_fidelity.json)",
    )
    args = parser.parse_args(argv)

    if FULL:
        mode = "full"
        specs = [
            DseWorkloadSpec("rodinia", "hotspot", 1.0, 1000),
            DseWorkloadSpec("rodinia", "srad", 1.0, 1000),
            DseWorkloadSpec("huggingface", "gpt2", 0.002, 1000),
            DseWorkloadSpec("huggingface", "deit", 0.002, 1000),
            DseWorkloadSpec("huggingface", "bert", 0.002, 1000),
        ]
    elif args.quick:
        mode = "quick"
        specs = [
            DseWorkloadSpec("rodinia", "hotspot", 1.0, 1000),
            DseWorkloadSpec("huggingface", "deit", 0.002, 1000),
        ]
    else:
        mode = "default"
        specs = [
            DseWorkloadSpec("rodinia", "hotspot", 1.0, 1000),
            DseWorkloadSpec("huggingface", "gpt2", 0.002, 1000),
            DseWorkloadSpec("huggingface", "deit", 0.002, 1000),
            DseWorkloadSpec("huggingface", "bert", 0.002, 1000),
        ]

    report: Dict[str, object] = {
        "quick": bool(args.quick),
        "full": FULL,
        "cpu_count": os.cpu_count(),
        "escalation_budget": ESCALATION_BUDGET,
    }

    rows = []
    for spec in specs:
        row = bench_workload(spec, seed=0)
        rows.append(row)
        print(
            f"{row['workload']:24s} n={row['invocations']:4d} "
            f"cycle {row['cycle_seconds']:6.2f}s -> hybrid "
            f"{row['hybrid_seconds']:5.2f}s ({row['speedup']:.2f}x) "
            f"gap={row['max_gap']:.3f} honest={row['honest']}"
        )
    report["workloads"] = rows

    speedup = geomean([row["speedup"] for row in rows])
    honest = all(row["honest"] for row in rows)
    floor = SPEEDUP_FLOOR[mode]
    report["hybrid_speedup_geomean"] = speedup
    report["all_honest"] = honest
    report["speedup_floor"] = floor
    print(
        f"hybrid speedup (geomean) {speedup:.2f}x (floor {floor:.1f}x), "
        f"honesty={'OK' if honest else 'FAIL'}"
    )

    write_bench_report(
        args.out,
        report,
        command="bench_fidelity",
        label=mode,
        config={
            "quick": bool(args.quick),
            "full": FULL,
            "escalation_budget": ESCALATION_BUDGET,
            "workloads": [r["workload"] for r in rows],
        },
        metrics={
            "dse_hybrid_speedup": speedup,
            # Float on purpose: `repro obs check` metric floors skip bools.
            "fidelity_gap_bound": 1.0 if honest else 0.0,
        },
    )
    ok = honest and speedup >= floor
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
