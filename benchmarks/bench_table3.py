"""Table 3: average speedup and error of 5 methods on 3 suites."""

import math

from _shared import show, table3_summaries
from repro.analysis import render_table
from repro.experiments.speedup_error import PAPER_TABLE3


def test_table3(benchmark):
    rows, summaries = benchmark.pedantic(
        table3_summaries, rounds=1, iterations=1
    )
    by_key = {(s.suite, s.method): s for s in summaries}

    table_rows = []
    for suite in ("rodinia", "casio", "huggingface"):
        for method in ("random", "pka", "sieve", "photon", "stem"):
            measured = by_key.get((suite, method))
            paper = PAPER_TABLE3.get(suite, {}).get(method)
            table_rows.append(
                [
                    suite,
                    method,
                    measured.speedup if measured and measured.feasible else float("nan"),
                    measured.error_percent if measured and measured.feasible else float("nan"),
                    paper[0] if paper else float("nan"),
                    paper[1] if paper else float("nan"),
                ]
            )
    show(
        render_table(
            ["suite", "method", "speedup", "error %", "paper speedup", "paper err %"],
            table_rows,
            title="Table 3: speedup (harmonic mean) and error (arithmetic mean)",
        )
    )

    # Shape assertions: STEM has the lowest error in every suite, and the
    # instruction-level methods are infeasible on HuggingFace.
    for suite in ("rodinia", "casio", "huggingface"):
        errors = {
            m: by_key[(suite, m)].error_percent
            for m in ("random", "pka", "sieve", "photon", "stem")
            if (suite, m) in by_key and by_key[(suite, m)].feasible
        }
        assert errors["stem"] == min(errors.values()), (suite, errors)
    for method in ("pka", "sieve", "photon"):
        summary = by_key[("huggingface", method)]
        assert not summary.feasible or math.isnan(summary.error_percent)
    # Error-reduction factor vs the best baseline is large on CASIO.
    casio = {m: by_key[("casio", m)].error_percent for m in ("random", "pka", "sieve", "photon", "stem")}
    best_baseline = min(v for m, v in casio.items() if m != "stem")
    assert best_baseline / max(casio["stem"], 1e-6) > 2.0
